#ifndef SQLB_RUNTIME_SERVING_MEDIATOR_H_
#define SQLB_RUNTIME_SERVING_MEDIATOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/allocation.h"
#include "des/mpsc_queue.h"
#include "mem/page_pool.h"
#include "obs/metrics.h"
#include "runtime/batch_window.h"
#include "runtime/mediation_core.h"
#include "runtime/scenario_engine.h"

/// \file
/// The wall-clock serving tier: the same Algorithm-1 pipeline the DES
/// drivers run, fed by real threads instead of the simulated Poisson pump.
///
/// Producer threads submit (consumer, query class) requests into per-shard
/// lock-free MPSC intake queues (des/mpsc_queue.h). One mediator thread owns
/// everything downstream: it advances the simulation clock to track the wall
/// clock (sim_now = wall_elapsed * time_scale), drains the queues, coalesces
/// arrivals in the per-shard batch windows (runtime/batch_window.h — the
/// exact controller the sharded DES tier uses), and mediates each due burst
/// through MediationCore::AllocateBatch. Provider service and completion
/// accounting run as ordinary DES events, fired by the mediator's RunUntil
/// as the wall clock passes them; wall-cadence housekeeping ticks take the
/// role of the DES epoch barriers (backlog samples into the adaptive window
/// controllers, window gauges).
///
/// Latency is measured in wall time, per producer thread: the mediator
/// records each query's enqueue->mediation wall latency into its producer's
/// own obs::Histogram, and the per-producer histograms fold associatively at
/// Stop() exactly like the per-lane ones (p50/p99/p999 merge exactly).
///
/// Determinism becomes a replay-testing tool: every served query and every
/// flushed burst is recorded into a ServingTrace (queries verbatim, bursts
/// as (shard, sim flush time, range)), along with the DecisionLog of every
/// allocation decision. ReplayServingTrace re-drives the recorded bursts
/// through identically-constructed cores under the DES and must reproduce
/// the decision log bit-for-bit (tests/runtime/serving_replay_test.cc pins
/// this, plus the conservation identity completed + infeasible == issued).

namespace sqlb::runtime {

/// Serving-mode knobs, on top of the scenario's SystemConfig.
struct ServingConfig {
  /// Logical mediator shards: provider p belongs to shard p % shards,
  /// consumer c routes to shard c % shards (consumer-affine, like the
  /// sharded tier's strict-parity routing).
  std::size_t shards = 1;
  /// Simulated seconds per wall-clock second. The service-time model is
  /// simulated (units / capacity, in sim seconds), so time_scale sets how
  /// fast provider capacity flows relative to real intake: >1 serves a
  /// wall-clock request rate higher than the simulated capacity would
  /// suggest.
  double time_scale = 1.0;
  /// Static coalescing window in sim seconds (0 = flush every loop pass).
  /// Ignored when adaptive_batch.enabled.
  double batch_window = 0.0;
  /// Per-shard adaptive window sizing, exactly as in the sharded DES tier.
  AdaptiveBatchConfig adaptive_batch;
  /// Flush a shard's buffer at this many queries even mid-window, and stop
  /// draining its intake queue past it until the flush (backpressure
  /// toward the bounded queue rather than an unbounded buffer).
  std::size_t max_burst = 64;
  /// Wall seconds between housekeeping ticks (the serving stand-in for the
  /// DES epoch barrier): backlog samples into the adaptive controllers and
  /// per-shard window gauges.
  double housekeeping_interval = 0.01;
  /// Bound on queued-but-undrained submissions per shard; Submit returns
  /// false (shed) beyond it.
  std::size_t max_queued_per_shard = 65536;
  /// Mediator sleep when a loop pass found no work, in microseconds.
  std::size_t idle_sleep_us = 50;
  /// Record the replay trace (queries, bursts, decisions). Off for
  /// pure-throughput benchmarking.
  bool record_trace = true;
};

/// One coalesced burst of a recorded serving run: `count` queries starting
/// at `first` in ServingTrace::queries, mediated on `shard` at sim time
/// `flush_time`.
struct ServingBurst {
  std::uint32_t shard = 0;
  SimTime flush_time = 0.0;
  std::size_t first = 0;
  std::size_t count = 0;
};

/// Everything a replay needs: the served queries verbatim (ids, issue
/// times, units — wall arrival order is baked into them), the burst
/// structure, and the decision log the replay must reproduce.
struct ServingTrace {
  std::vector<Query> queries;
  std::vector<ServingBurst> bursts;
  DecisionLog decisions;
};

/// What a serving run produced: the familiar RunResult (counters, metrics,
/// spans) plus the wall-clock intake accounting.
struct ServingReport {
  RunResult run;
  /// Successful producer submissions (== served once drained).
  std::uint64_t submitted = 0;
  /// Submissions refused by queue backpressure (never entered the system).
  std::uint64_t shed = 0;
  /// Queries mediated (mirror of run.queries_issued).
  std::uint64_t served = 0;
  /// Bursts flushed across all shards.
  std::uint64_t bursts = 0;
  /// Start() -> Stop() wall duration in seconds.
  double wall_seconds = 0.0;
  /// Enqueue -> mediation wall latency, merged over every producer's
  /// per-thread histogram (p50/p99/p999 via Quantile).
  obs::Histogram intake_wall;
};

/// One producer thread's registration. Submission runs through
/// ServingMediator::Submit; this handle carries the counters a closed-loop
/// generator waits on and the per-thread wall-latency histogram.
class ServingProducer {
 public:
  /// Successful submissions from this producer.
  std::uint64_t submitted() const {
    return submitted_.load(std::memory_order_acquire);
  }
  /// Submissions refused by backpressure.
  std::uint64_t shed() const { return shed_.load(std::memory_order_acquire); }
  /// How many of this producer's submissions have been mediated.
  std::uint64_t mediated() const {
    return mediated_.load(std::memory_order_acquire);
  }
  /// Closed-loop wait: spins (yielding) until mediated() >= n.
  void AwaitMediated(std::uint64_t n) const;
  /// This producer's enqueue->mediation wall-latency histogram. Stable
  /// only after ServingMediator::Stop() (the mediator thread writes it).
  const obs::Histogram& intake_wall() const { return intake_wall_; }

 private:
  friend class ServingMediator;
  std::uint32_t index_ = 0;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> mediated_{0};
  /// Written by the mediator thread only; read after Stop().
  obs::Histogram intake_wall_;
};

/// The serving-mode mediator. Lifecycle: construct -> RegisterProducer()
/// for each producer thread -> Start() -> producers Submit() -> Drain()
/// (optional) -> Stop() -> read the report and trace().
///
/// The scenario SystemConfig must describe a captive, fault-free
/// population: no departures, no churn, no shard faults (serving has no
/// scripted clock to fire them on). sqlb::Config::Validate() reports these
/// as errors; the constructor enforces them.
class ServingMediator {
 public:
  /// Fresh method instance per shard, as in the sharded tier.
  using MethodFactory =
      std::function<std::unique_ptr<AllocationMethod>(std::uint32_t shard)>;

  ServingMediator(const SystemConfig& config, const ServingConfig& serving,
                  MethodFactory factory);
  ServingMediator(const ServingMediator&) = delete;
  ServingMediator& operator=(const ServingMediator&) = delete;
  ~ServingMediator();

  /// Registers one producer thread. Call before Start(); the handle stays
  /// owned by the mediator and valid for its lifetime.
  ServingProducer* RegisterProducer();

  /// Launches the mediator thread and starts the wall clock.
  void Start();

  /// Submits one query request from `producer`'s thread: consumer c issues
  /// one query of workload class `class_index` (units drawn from the
  /// population's class table, q.n from the config — exactly how the DES
  /// arrival pump builds queries). Wait-free; false = shed by queue
  /// backpressure (the request never entered the system).
  bool Submit(ServingProducer* producer, std::uint32_t consumer_index,
              std::uint32_t class_index);

  /// Blocks until every successful submission so far has been mediated.
  /// Call only after the producers stopped submitting.
  void Drain();

  /// Stops the mediator thread, flushes any remaining intake, drains
  /// in-flight provider service through the DES, and finalizes the report
  /// (metrics merged in fixed lane order, spans sealed, per-producer
  /// histograms folded). Call once.
  ServingReport Stop();

  /// The recorded replay trace. Stable after Stop().
  const ServingTrace& trace() const { return trace_; }

  std::size_t shards() const { return shards_.size(); }
  const ScenarioEngine& engine() const { return engine_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// One queued submission, as pushed by a producer thread.
  struct Intake {
    std::uint32_t consumer = 0;
    std::uint32_t class_index = 0;
    std::uint32_t producer = 0;
    Clock::time_point enqueue_wall;
  };

  struct ShardState {
    std::unique_ptr<des::MpscQueue<Intake>> queue;
    BatchWindowController controller;
    std::vector<Query> buffer;
    /// Parallel to buffer: (enqueue wall time, producer index) per query.
    std::vector<std::pair<Clock::time_point, std::uint32_t>> meta;
    /// Sim arrival time of the oldest buffered query (+inf when empty).
    SimTime earliest_arrival = kSimTimeInfinity;
    /// Monotone clamp for the controller's OnArrival.
    SimTime last_arrival = 0.0;
    std::vector<MediationCore::Outcome> outcomes;

    explicit ShardState(const AdaptiveBatchConfig& config)
        : controller(config) {}
  };

  void MediatorLoop();
  SimTime SimNowFromWall(Clock::time_point t) const;
  /// Pops every queue into its shard buffer (bounded by max_burst per
  /// shard). Returns the number of submissions drained.
  std::size_t DrainIntake(SimTime now);
  /// Flushes every shard whose window elapsed (or buffer filled); `force`
  /// flushes everything non-empty. Returns the number of bursts flushed.
  std::size_t FlushDue(SimTime now, bool force);
  void FlushShard(std::uint32_t shard, SimTime now);
  double WindowFor(const ShardState& state) const;
  /// Wall-cadence stand-in for the DES epoch barrier.
  void Housekeep();

  SystemConfig config_;
  ServingConfig serving_;
  ScenarioEngine engine_;
  std::vector<std::unique_ptr<AllocationMethod>> methods_;
  std::vector<std::unique_ptr<MediationCore>> cores_;

  /// Node storage behind every intake queue (chunked MPSC nodes).
  mem::PagePool pages_;
  mem::SlabPool slab_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::vector<std::unique_ptr<ServingProducer>> producers_;

  ServingTrace trace_;
  QueryId next_query_id_ = 0;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  /// Queries mediated so far (Drain's progress signal).
  std::atomic<std::uint64_t> served_{0};
  Clock::time_point t0_;
  bool started_ = false;
  bool stopped_ = false;

  std::uint64_t bursts_flushed_ = 0;
  double wall_seconds_ = 0.0;

  // Hoisted observability handles (single-writer: the mediator thread).
  std::vector<obs::Counter*> flush_counters_;
  std::vector<obs::Counter*> batched_query_counters_;
  std::vector<obs::Histogram*> batch_wait_hists_;
  obs::TraceLane* coord_trace_ = nullptr;
};

/// What a DES replay of a recorded serving run produced: its own decision
/// log (compare with ServingTrace::decisions via DecisionLog::IdenticalTo)
/// and the full RunResult for the conservation pins.
struct ServingReplayResult {
  RunResult run;
  DecisionLog decisions;
};

/// Replays `trace` through the DES: reconstructs the population and the
/// per-shard cores exactly as ServingMediator did (same SystemConfig seed,
/// same shard count, same method factory), then re-drives every recorded
/// burst at its recorded sim flush time through AllocateBatch. The
/// resulting decision log must equal the recorded one bit-for-bit.
ServingReplayResult ReplayServingTrace(const SystemConfig& config,
                                       std::size_t shards,
                                       const ServingMediator::MethodFactory& factory,
                                       const ServingTrace& trace);

}  // namespace sqlb::runtime

#endif  // SQLB_RUNTIME_SERVING_MEDIATOR_H_
