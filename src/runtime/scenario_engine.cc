#include "runtime/scenario_engine.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/status.h"
#include "des/arrival_process.h"
#include "model/characterization.h"
#include "model/metrics.h"

namespace sqlb::runtime {

void ScenarioEngine::Driver::Execute(des::Simulator& sim, SimTime duration) {
  sim.RunUntil(duration);
  // Drain in-flight service so every allocated query completes.
  sim.RunAll();
}

ChurnOutcome ScenarioEngine::Driver::OnProviderChurn(
    des::Simulator& sim, const ProviderChurnEvent& event) {
  (void)sim;
  (void)event;
  SQLB_CHECK(false,
             "this driver does not implement provider churn; clear "
             "SystemConfig::provider_churn or override OnProviderChurn");
  return ChurnOutcome::kNoOp;
}

void ScenarioEngine::Driver::OnShardFault(des::Simulator& sim,
                                          const ShardFaultEvent& event) {
  (void)sim;
  (void)event;
  SQLB_CHECK(false,
             "this driver does not implement shard failover; clear "
             "SystemConfig::shard_faults or override OnShardFault");
}

ScenarioEngine::ScenarioEngine(const SystemConfig& config)
    : config_(config),
      population_(config.population, config.seed),
      rng_(config.seed ^ 0x5e5703a7ULL),
      query_class_rng_(rng_.Fork(11)),
      consumer_pick_rng_(rng_.Fork(12)),
      agent_store_(config.agent_pool),
      reputation_(config.population.num_providers, 0.0, 0.1),
      response_window_(500) {
  // One validated config path (runtime/scenario.h): drivers that surface
  // recoverable errors run ValidateSystemConfig via sqlb::Config::Validate()
  // before construction; reaching here with an invalid config is a
  // programming error.
  const Status valid = ValidateSystemConfig(config);
  SQLB_CHECK(valid.ok(), valid.message().c_str());

  agent_store_.Resize(population_.num_providers());
  providers_.reserve(population_.num_providers());
  for (const ProviderProfile& profile : population_.providers()) {
    providers_.emplace_back(profile, &config_.provider, &agent_store_,
                            static_cast<std::uint32_t>(providers_.size()));
  }
  consumers_.reserve(population_.num_consumers());
  for (std::size_t c = 0; c < population_.num_consumers(); ++c) {
    consumers_.emplace_back(ConsumerId(static_cast<std::uint32_t>(c)),
                            config_.consumer);
    active_consumers_.push_back(static_cast<std::uint32_t>(c));
  }

  // Scheduled churn: providers whose first event is a join start outside
  // the system (inactive, no membership anywhere) and enter at that time.
  initial_holdouts_ = config_.provider_churn.InitialHoldouts(providers_.size());
  held_out_.assign(providers_.size(), false);
  for (std::uint32_t index : initial_holdouts_) {
    held_out_[index] = true;
    providers_[index].Depart();
  }
  churn_events_ = config_.provider_churn.events;
  std::stable_sort(churn_events_.begin(), churn_events_.end(),
                   [](const ProviderChurnEvent& a,
                      const ProviderChurnEvent& b) { return a.time < b.time; });

  fault_events_ = config_.shard_faults.events;
  std::stable_sort(fault_events_.begin(), fault_events_.end(),
                   [](const ShardFaultEvent& a, const ShardFaultEvent& b) {
                     return a.time < b.time;
                   });
  result_.duration = config_.duration;
  result_.initial_providers = providers_.size() - initial_holdouts_.size();
  result_.initial_consumers = consumers_.size();

  // Mono default: one shard lane + the coordinator lane. The sharded
  // driver re-creates the recorder with its shard count before building
  // cores (ConfigureObservability).
  recorder_ = std::make_unique<obs::FlightRecorder>(config_.observability, 1);
}

void ScenarioEngine::ConfigureObservability(std::size_t shard_lanes) {
  SQLB_CHECK(!ran_, "ConfigureObservability must precede Run");
  recorder_ =
      std::make_unique<obs::FlightRecorder>(config_.observability, shard_lanes);
}

MediationCore::Shared ScenarioEngine::CoreSharedState() {
  MediationCore::Shared shared;
  shared.config = &config_;
  shared.population = &population_;
  shared.providers = &providers_;
  shared.consumers = &consumers_;
  shared.reputation = &reputation_;
  shared.result = &result_;
  shared.response_window = &response_window_;
  shared.arena = agent_store_.arena(0);
  return shared;
}

double ScenarioEngine::ArrivalRateAt(SimTime t) const {
  return ScaledArrivalRate(config_, population_, active_consumers_.size(),
                           result_.initial_consumers, t);
}

RunResult ScenarioEngine::Run(Driver& driver) {
  SQLB_CHECK(!ran_, "ScenarioEngine::Run may only be called once");
  ran_ = true;

  // Arrival process over the whole run (fork 13 of the shared stream).
  const double max_rate = NominalMaxArrivalRate(config_, population_);
  des::PoissonArrivalProcess arrivals(
      [this](SimTime t) { return ArrivalRateAt(t); }, max_rate,
      rng_.Fork(13));
  arrivals.Start(sim_, 0.0, config_.duration,
                 [this, &driver](des::Simulator& sim) {
                   OnArrival(sim, driver);
                 });

  // Metric probes, auxiliary tasks (gossip) and departure checks all read
  // (and, for departures, mutate) cross-core state, so under parallel
  // execution each firing is an epoch barrier: the lanes drain up to the
  // event's time and merge before the callback runs.
  const bool barrier = driver.TasksAreBarriers();
  des::PeriodicTask probe;
  if (config_.record_series) {
    probe.Start(sim_, config_.sample_interval, config_.sample_interval,
                config_.duration,
                [this, &driver](des::Simulator& sim) {
                  SampleMetrics(sim, driver);
                },
                barrier);
  }

  driver.StartAuxiliaryTasks(sim_);

  des::PeriodicTask departure_task;
  const DepartureConfig& dep = config_.departures;
  const bool departures_enabled =
      dep.consumers_may_leave || dep.provider_dissatisfaction ||
      dep.provider_starvation || dep.provider_overutilization;
  if (departures_enabled) {
    departure_task.Start(sim_, dep.grace_period, dep.check_interval,
                         config_.duration,
                         [this, &driver](des::Simulator& sim) {
                           RunDepartureChecks(sim, driver);
                         },
                         barrier);
  }

  // The churn script: each event is an epoch barrier under parallel
  // execution (membership mutates only over quiescent, merged lanes).
  // Events at one time fire in schedule order (stable sort + ascending
  // event ids).
  if (!churn_events_.empty()) {
    join_waiting_.assign(providers_.size(), 0);
  }
  for (const ProviderChurnEvent& event : churn_events_) {
    if (event.time > config_.duration) continue;  // beyond the horizon
    sim_.ScheduleAt(event.time,
                    [this, &driver, event, barrier](des::Simulator& sim) {
                      FireChurnEvent(sim, driver, event, barrier,
                                     /*retry=*/false);
                    },
                    barrier);
  }

  // The fault script: every kill is a kFailover barrier — the lanes are
  // quiescent and merged when the crash fires, and the barrier kind
  // licenses the driver to move membership between lanes (kFailover is
  // semantically inert under serial execution, so it is passed
  // unconditionally).
  for (const ShardFaultEvent& event : fault_events_) {
    if (event.time > config_.duration) continue;  // beyond the horizon
    sim_.ScheduleBarrierAt(event.time,
                           [&driver, event](des::Simulator& sim) {
                             driver.OnShardFault(sim, event);
                           },
                           des::BarrierKind::kFailover);
  }

  driver.Execute(sim_, config_.duration);

  result_.remaining_providers = driver.ActiveProviderCount();
  result_.remaining_consumers = active_consumers_.size();

  // Seal the flight recorder: remaining spans drained and sorted into the
  // deterministic (start, lane, seq) stream, per-lane registries folded in
  // fixed lane order into the run-level snapshot.
  result_.trace_spans = recorder_->FinishSpans();
  result_.trace_spans_dropped = recorder_->DroppedSpans();
  result_.metrics = recorder_->MergedMetrics();

  return std::move(result_);
}

void ScenarioEngine::FireChurnEvent(des::Simulator& sim, Driver& driver,
                                    const ProviderChurnEvent& event,
                                    bool barrier, bool retry) {
  const std::uint32_t p = event.provider_index;
  if (retry && !join_waiting_[p]) {
    return;  // a scheduled leave annulled this pending join meanwhile
  }
  if (!event.join && join_waiting_[p]) {
    // The provider never managed to rejoin (still draining) and now leaves
    // again: the join/leave pair annihilates. The live retry event finds
    // the flag cleared and dies.
    join_waiting_[p] = 0;
    return;
  }

  switch (driver.OnProviderChurn(sim, event)) {
    case ChurnOutcome::kApplied:
      join_waiting_[p] = 0;
      if (event.join) ++result_.provider_joins;
      break;
    case ChurnOutcome::kNoOp:
      join_waiting_[p] = 0;
      break;
    case ChurnOutcome::kDeferred: {
      SQLB_CHECK(event.join, "only joins may be deferred");
      join_waiting_[p] = 1;
      const SimTime next = sim.Now() + config_.churn_retry_interval;
      if (next <= config_.duration) {
        sim.ScheduleAt(next,
                       [this, &driver, event, barrier](des::Simulator& s) {
                         FireChurnEvent(s, driver, event, barrier,
                                        /*retry=*/true);
                       },
                       barrier);
      }
      // Past the horizon: the provider never drained in time — it simply
      // does not return this run (deterministic in every execution mode).
      break;
    }
  }
}

void ScenarioEngine::OnArrival(des::Simulator& sim, Driver& driver) {
  if (active_consumers_.empty()) return;
  const Query query =
      DrawArrivalQuery(config_, population_, active_consumers_,
                       consumer_pick_rng_, query_class_rng_,
                       next_query_id_++, sim.Now());

  ++result_.queries_issued;

  // Intake span: the query exists. Recorded on the coordinator lane — the
  // arrival pump runs there in every execution mode.
  if (obs::TraceLane* lane =
          recorder_->trace_lane(recorder_->coordinator_lane());
      lane != nullptr && lane->SamplesQuery(query.id)) {
    lane->RecordInstant(obs::SpanKind::kIntake, sim.Now(), query.id,
                        static_cast<double>(query.consumer.index()));
  }

  driver.OnQueryArrival(sim, query);
}

void ScenarioEngine::SampleMetrics(des::Simulator& sim, Driver& driver) {
  const SimTime now = sim.Now();
  des::SeriesSet& s = result_.series;

  std::vector<double> sat_int, sat_pref, adq_int, adq_pref;
  std::vector<double> allocsat_int, allocsat_pref, ut;
  sat_int.reserve(providers_.size());
  driver.VisitActiveProviders([&](ProviderAgent& p) {
    sat_int.push_back(p.SatisfactionOnIntentions());
    sat_pref.push_back(p.SatisfactionOnPreferences());
    adq_int.push_back(p.AdequationOnIntentions());
    adq_pref.push_back(p.AdequationOnPreferences());
    allocsat_int.push_back(p.window().AllocationSatisfactionValue(
        ProviderWindow::Channel::kIntention));
    allocsat_pref.push_back(p.window().AllocationSatisfactionValue(
        ProviderWindow::Channel::kPreference));
    ut.push_back(p.Utilization(now));
  });
  s.Add(kSeriesProvSatIntMean, now, Mean(sat_int));
  s.Add(kSeriesProvSatPrefMean, now, Mean(sat_pref));
  s.Add(kSeriesProvAdqIntMean, now, Mean(adq_int));
  s.Add(kSeriesProvAdqPrefMean, now, Mean(adq_pref));
  s.Add(kSeriesProvAllocSatIntMean, now, Mean(allocsat_int));
  s.Add(kSeriesProvAllocSatPrefMean, now, Mean(allocsat_pref));
  s.Add(kSeriesProvSatIntFair, now, JainFairness(sat_int));
  s.Add(kSeriesProvSatPrefFair, now, JainFairness(sat_pref));
  s.Add(kSeriesUtMean, now, Mean(ut));
  s.Add(kSeriesUtFair, now, JainFairness(ut));

  std::vector<double> csat, cadq, callocsat;
  csat.reserve(active_consumers_.size());
  for (std::uint32_t index : active_consumers_) {
    ConsumerAgent& c = consumers_[index];
    csat.push_back(c.Satisfaction());
    cadq.push_back(c.Adequation());
    callocsat.push_back(c.AllocationSatisfactionValue());
  }
  s.Add(kSeriesConsSatMean, now, Mean(csat));
  s.Add(kSeriesConsAdqMean, now, Mean(cadq));
  s.Add(kSeriesConsAllocSatMean, now, Mean(callocsat));
  s.Add(kSeriesConsSatFair, now, JainFairness(csat));

  s.Add(kSeriesResponseTime, now, response_window_.Mean());
  s.Add(kSeriesActiveProviders, now,
        static_cast<double>(driver.ActiveProviderCount()));
  s.Add(kSeriesActiveConsumers, now,
        static_cast<double>(active_consumers_.size()));
  s.Add(kSeriesWorkloadFraction, now,
        config_.workload.FractionAt(now, config_.duration));

  driver.ExtendMetricsSample(now, s);
}

void ScenarioEngine::RunDepartureChecks(des::Simulator& sim, Driver& driver) {
  const SimTime now = sim.Now();
  const double optimal_ut =
      config_.workload.FractionAt(now, config_.duration);

  driver.RunProviderDepartureChecks(now, optimal_ut);
  RunConsumerDepartureChecks(config_.departures, consumers_,
                             active_consumers_, consumer_violations_, now,
                             &result_);
}

}  // namespace sqlb::runtime
