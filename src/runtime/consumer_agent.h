#ifndef SQLB_RUNTIME_CONSUMER_AGENT_H_
#define SQLB_RUNTIME_CONSUMER_AGENT_H_

#include "common/math_util.h"
#include "common/stats.h"
#include "common/types.h"
#include "core/intention.h"
#include "model/windows.h"

/// \file
/// The consumer side: Definition 7 intentions (preference vs reputation,
/// Section 5.1) and the Section 3.1 characterization window over the k last
/// issued queries.

namespace sqlb::runtime {

struct ConsumerAgentConfig {
  /// Window capacity k and prior (paper: k = 200, prior 0.5). The
  /// satisfaction prior weight is irrelevant for consumers (every issued
  /// query contributes a full window entry).
  WindowConfig window{200, 0.5, 0.0};
  /// Definition 7 parameters. The paper's simulations use upsilon = 1 in
  /// preference-only mode (Section 6.1).
  ConsumerIntentionParams intention{
      1.0, 1.0, ConsumerIntentionMode::kPreferenceOnly};
};

class ConsumerAgent {
 public:
  ConsumerAgent(ConsumerId id, const ConsumerAgentConfig& config);

  ConsumerId id() const { return id_; }

  /// ci_c(q, p) — Definition 7 for a provider with the given persistent
  /// preference and reputation. Inline fast path for the paper's
  /// upsilon = 1 preference-only setup (Section 6.1), which the mediation
  /// gather calls once per candidate per query.
  double ComputeIntention(double preference, double reputation) const {
    if (config_.intention.mode == ConsumerIntentionMode::kPreferenceOnly) {
      return Clamp(preference, -1.0, 1.0);
    }
    return ConsumerIntention(preference, reputation, config_.intention);
  }

  /// False when intentions ignore reputation entirely (preference-only
  /// mode): the gather loop may skip the registry read.
  bool IntentionUsesReputation() const {
    return config_.intention.mode != ConsumerIntentionMode::kPreferenceOnly;
  }

  /// Records one allocation outcome: the per-query adequation (Eq. 1) and
  /// satisfaction (Eq. 2).
  void OnAllocated(double adequation, double satisfaction);

  /// Records the response time of a completed query.
  void OnResult(double response_time_seconds);

  const ConsumerWindow& window() const { return window_; }
  double Satisfaction() const { return window_.Satisfaction(); }
  double Adequation() const { return window_.Adequation(); }
  double AllocationSatisfactionValue() const {
    return window_.AllocationSatisfactionValue();
  }

  const RunningStats& response_times() const { return response_times_; }
  std::uint64_t issued() const { return window_.recorded(); }

  bool active() const { return active_; }
  /// Marks the consumer as departed; it issues no further queries.
  void Depart() { active_ = false; }

 private:
  ConsumerId id_;
  ConsumerAgentConfig config_;
  ConsumerWindow window_;
  RunningStats response_times_;
  bool active_ = true;
};

}  // namespace sqlb::runtime

#endif  // SQLB_RUNTIME_CONSUMER_AGENT_H_
