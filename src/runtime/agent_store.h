#ifndef SQLB_RUNTIME_AGENT_STORE_H_
#define SQLB_RUNTIME_AGENT_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "mem/agent_arena.h"

/// \file
/// Structure-of-arrays storage for the provider population's hot state —
/// the agent-side extension of the SoA CandidateColumns work: backlog,
/// utilization sums, event-revision stamps and membership flags live in
/// dense per-field columns owned by the scenario engine, and ProviderAgent
/// becomes a compatibility view over one slot. The mediation tier's stamp
/// sweeps (prefetch + hit check over every candidate) then walk contiguous
/// arrays instead of one scattered ~14 KB object per provider, and the
/// engine can account residency (bytes_per_provider) exactly.

namespace sqlb::runtime {

class AgentStore {
 public:
  /// `core_slot` value of a provider that is currently no core's member.
  static constexpr std::uint32_t kNoCoreSlot = 0xffffffffu;

  explicit AgentStore(const mem::AgentPoolConfig& config = {});

  AgentStore(const AgentStore&) = delete;
  AgentStore& operator=(const AgentStore&) = delete;

  /// Sizes every column for `count` providers, in the fresh-agent state
  /// (active, idle, zero revisions, no core membership). When pooling is
  /// enabled a single arena is configured; the sharded driver re-configures
  /// one per shard before any agent allocates.
  void Resize(std::size_t count);

  std::size_t count() const { return backlog_units_.size(); }
  const mem::AgentPoolConfig& config() const { return config_; }
  bool pooled() const { return config_.enabled; }

  // --- Hot columns (indexed by provider slot = global provider index) ------

  double& backlog_units(std::size_t i) { return backlog_units_[i]; }
  double& total_allocated_units(std::size_t i) {
    return total_allocated_units_[i];
  }
  std::uint64_t& load_revision(std::size_t i) { return load_revision_[i]; }
  std::uint64_t& char_revision(std::size_t i) { return char_revision_[i]; }
  const std::uint64_t* char_revision_data() const {
    return char_revision_.data();
  }
  std::uint64_t& util_revision(std::size_t i) { return util_revision_[i]; }
  double& util_sum(std::size_t i) { return util_sum_[i]; }
  SimTime& util_last_time(std::size_t i) { return util_last_time_[i]; }

  bool active(std::size_t i) const { return (flags_[i] & kActive) != 0; }
  void set_active(std::size_t i, bool v) {
    flags_[i] = static_cast<std::uint8_t>(v ? flags_[i] | kActive
                                            : flags_[i] & ~kActive);
  }
  bool in_service(std::size_t i) const {
    return (flags_[i] & kInService) != 0;
  }
  void set_in_service(std::size_t i, bool v) {
    flags_[i] = static_cast<std::uint8_t>(v ? flags_[i] | kInService
                                            : flags_[i] & ~kInService);
  }

  /// Dense per-core slot of this provider in its owning mediation core
  /// (kNoCoreSlot while unowned); lets each core keep member-indexed
  /// characterization state instead of population-indexed arrays.
  std::uint32_t& core_slot(std::size_t i) { return core_slot_[i]; }

  // --- Per-lane arenas (pooled mode only) ----------------------------------

  /// Recreates the arenas, one per lane. Must run before any agent
  /// allocates pooled chunks (the sharded driver calls it with the shard
  /// count right after engine construction).
  void ConfigureArenas(std::size_t lanes);
  /// The lane's arena, or nullptr when pooling is disabled.
  mem::AgentArena* arena(std::size_t lane);
  std::size_t arena_count() const { return arenas_.size(); }

  /// Bytes of column storage (the SoA share of bytes_per_provider).
  std::size_t columns_bytes() const;
  /// Bytes currently reserved across every arena.
  std::size_t arena_bytes_reserved() const;
  /// High-water bytes reserved across every arena.
  std::size_t arena_peak_bytes() const;

 private:
  static constexpr std::uint8_t kActive = 1;
  static constexpr std::uint8_t kInService = 2;

  mem::AgentPoolConfig config_;
  std::vector<double> backlog_units_;
  std::vector<double> total_allocated_units_;
  std::vector<double> util_sum_;
  std::vector<SimTime> util_last_time_;
  std::vector<std::uint64_t> load_revision_;
  std::vector<std::uint64_t> char_revision_;
  std::vector<std::uint64_t> util_revision_;
  std::vector<std::uint8_t> flags_;
  std::vector<std::uint32_t> core_slot_;
  std::vector<std::unique_ptr<mem::AgentArena>> arenas_;
};

}  // namespace sqlb::runtime

#endif  // SQLB_RUNTIME_AGENT_STORE_H_
