#ifndef SQLB_RUNTIME_PROVIDER_AGENT_H_
#define SQLB_RUNTIME_PROVIDER_AGENT_H_

#include <functional>
#include <memory>

#include "common/types.h"
#include "core/intention.h"
#include "des/simulator.h"
#include "mem/chunked_fifo.h"
#include "model/query.h"
#include "model/windows.h"
#include "runtime/agent_store.h"
#include "workload/population.h"

/// \file
/// The provider side of the system: a FIFO service station with finite
/// capacity (Section 2: "providers have a finite capacity"), utilization
/// tracking (DESIGN.md fidelity decision 1), the sliding characterization
/// window of Section 3.2, and the Definition 8 intention function, whose
/// self-balance uses the provider's *private preference-based* satisfaction
/// (Section 5.2).
///
/// Storage layout: ProviderAgent is a *view*. The hot scalar state —
/// backlog, running totals, the utilization windowed sum and every
/// event-revision stamp — lives in SoA columns of the engine-owned
/// AgentStore (runtime/agent_store.h); the queue and the utilization event
/// log are chunked FIFOs and the characterization window rides a chunked
/// ring, all drawing from the owning lane's arena when pooling is enabled.
/// The standalone (profile, config) constructor — unit tests, examples —
/// self-hosts a single-slot store so the class keeps its old value
/// semantics. Pooled and heap modes execute the identical arithmetic, so
/// enabling the pool is bit-invisible to every parity pin.

namespace sqlb::runtime {

struct ProviderAgentConfig {
  /// Window capacity k and prior (paper: k = 500, prior 0.5), with the
  /// strict Definition 5 satisfaction (0 when nothing in the window was
  /// performed — see WindowConfig::satisfaction_prior_weight).
  WindowConfig window{500, 0.5, 0.0};
  /// Width of the utilization measurement window, in seconds.
  SimTime utilization_window = 60.0;
  /// Definition 8 parameters.
  ProviderIntentionParams intention;
  /// Floor of the Mariposa asking price.
  double bid_price_floor = 0.05;
};

/// One provider's runtime state.
class ProviderAgent {
 public:
  /// `on_completion(query, performer, completion_time)` fires when a
  /// performed query finishes service.
  using CompletionFn =
      std::function<void(const Query&, ProviderId, SimTime)>;

  /// Standalone agent owning its own config copy and single-slot store
  /// (heap-eager layout) — the unit-test / example constructor.
  ProviderAgent(const ProviderProfile& profile,
                const ProviderAgentConfig& config);

  /// Engine-owned agent: a view over `store` slot `slot`, sharing one
  /// config for the whole population. Both must outlive the agent.
  ProviderAgent(const ProviderProfile& profile,
                const ProviderAgentConfig* config, AgentStore* store,
                std::uint32_t slot);

  ProviderAgent(ProviderAgent&&) = default;

  const ProviderProfile& profile() const { return profile_; }
  ProviderId id() const { return profile_.id; }
  double capacity() const { return profile_.capacity; }

  /// Homes this agent's future chunk allocations on `arena` (the owning
  /// lane's). Null reverts to heap chunks. Chunks already resident keep
  /// their original owner pool and return there when drained — the
  /// cross-shard migration contract of churn handoffs.
  void SetArena(mem::AgentArena* arena);

  // --- Intention and bidding (what the mediator asks for) -----------------

  /// pi_p(q) — Definition 8, evaluated at time `now` with the provider's
  /// current utilization and private preference-based satisfaction.
  double ComputeIntention(double preference, SimTime now);

  /// Mariposa-style asking price for a query it has `preference` for.
  double ComputeBidPrice(double preference) const;

  /// The provider's delay estimate for a new query of `units` treatment
  /// units: current backlog plus its own service time.
  double EstimateDelay(double units) const;

  // --- Load state ----------------------------------------------------------

  /// Ut(p) at `now`: treatment units allocated within the sliding window,
  /// divided by capacity * window. Exceeds 1 under overload.
  double Utilization(SimTime now);

  /// Total treatment units ever allocated to this provider. Departure
  /// checks derive the *chronic* utilization (average allocation rate over
  /// capacity since the previous check) from deltas of this counter; it
  /// drives the starvation rule (a provider missing one 60-second window
  /// has not "starved").
  double total_allocated_units() const {
    return store_->total_allocated_units(slot_);
  }

  /// Utilization including the carried queue: Utilization(now) +
  /// backlog / (capacity * window). A provider absorbing work at exactly
  /// its capacity but dragging a long queue reads > 1 here while the plain
  /// windowed rate reads ~ 1; this is the overutilization-rule signal
  /// (sustained overload is queue debt, not allocation rate).
  double CommittedUtilization(SimTime now);

  /// Seconds of work sitting in the queue (including the in-service query,
  /// counted at full cost — a documented over-estimate of at most one
  /// query).
  double BacklogSeconds() const {
    return store_->backlog_units(slot_) / profile_.capacity;
  }
  double backlog_units() const { return store_->backlog_units(slot_); }
  std::size_t queue_length() const { return queue_.size(); }

  // --- Event stamps for the characterization cache -------------------------
  //
  // MediationCore keeps a per-member candidate snapshot keyed on these
  // monotonic revisions, so Algorithm 1's gather step recomputes a field
  // only when an event could have changed it (see
  // runtime/mediation_core.h). Every stamp is bumped by the state
  // transition that invalidates the corresponding field — never by reads.

  /// Changes exactly when queue/backlog state changes: Enqueue, service
  /// completion, Depart/Rejoin.
  std::uint64_t load_revision() const { return store_->load_revision(slot_); }
  /// Changes whenever Utilization()'s windowed sum changed value: work was
  /// allocated, or a past allocation expired out of the measurement window
  /// (bumped by whichever call evicted it — including probe/departure-check
  /// reads outside the mediation path).
  std::uint64_t utilization_revision() const {
    return store_->util_revision(slot_);
  }
  /// True when evaluating Utilization(now) would evict expired allocations
  /// — i.e. the utilization has decayed since the last read, even though no
  /// new event was recorded. The exact eviction predicate of the windowed
  /// sum, so a cached utilization revalidated against
  /// (utilization_revision, WouldExpireAt) is bit-identical to recomputing.
  bool UtilizationWouldDecay(SimTime now) const {
    return !util_events_.empty() &&
           util_events_.front().time <= now - config_->utilization_window;
  }
  /// Changes exactly when either channel's Satisfaction() can change (the
  /// performed-subset aggregates moved; plain proposals leave it alone).
  std::uint64_t satisfaction_revision() const {
    return window_.satisfaction_revision();
  }
  /// Coarse summary stamp: changes whenever ANY of the three fine revisions
  /// above changes — one load decides "everything cached about this
  /// provider is still exact" (the utilization decay deadline is checked
  /// separately via UtilizationFrontEventTime). Maintained by the mutating
  /// methods themselves, so it also covers evictions triggered by reads on
  /// other paths (probes, gossip, departure checks).
  std::uint64_t characterization_revision() const {
    return store_->char_revision(slot_);
  }
  /// Timestamp of the oldest allocation still inside the utilization
  /// window (+inf when none): while characterization_revision() holds,
  /// `UtilizationFrontEventTime() <= now - utilization window` is exactly
  /// the decay predicate UtilizationWouldDecay(now) evaluates.
  SimTime UtilizationFrontEventTime() const {
    return util_events_.empty() ? kSimTimeInfinity
                                : util_events_.front().time;
  }

  // --- Query lifecycle -----------------------------------------------------

  /// Records a proposed query in the characterization window (every query
  /// in P_q is proposed; `performed` marks the ones allocated here —
  /// Section 5.4: non-selected providers are informed of the mediation
  /// result).
  void OnProposed(double shown_intention, double preference, bool performed);

  /// Prefetch hint ahead of OnProposed during the post-decision notify
  /// sweep over a large P_q (each provider's window ring is its own heap
  /// block; without the hint every Record opens with a cache miss).
  void PrefetchProposalSlot() const { window_.PrefetchRecordSlot(); }

  /// Prefetch hint ahead of the characterization-cache hit check: the
  /// coarse stamps live in one dense store column, so the gather sweep
  /// pulls the candidate's stamp line a few entries early.
  void PrefetchCharacterizationStamp() const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(store_->char_revision_data() + slot_, 0, 1);
#endif
  }

  /// Accepts an allocated query: joins the FIFO queue; service takes
  /// units / capacity seconds once started. `on_completion` fires at
  /// completion time.
  void Enqueue(des::Simulator& sim, const Query& query,
               CompletionFn on_completion);

  // --- Characterization ----------------------------------------------------

  const ProviderWindow& window() const { return window_; }

  /// delta_s(p) on shown intentions — what the mediator can observe and
  /// what Eq. 6 consumes.
  double SatisfactionOnIntentions() const {
    return window_.Satisfaction(ProviderWindow::Channel::kIntention);
  }
  /// delta_s(p) on private preferences — what Definition 8's self-balance
  /// consumes (Section 5.2) and what Figure 4(b) reports.
  double SatisfactionOnPreferences() const {
    return window_.Satisfaction(ProviderWindow::Channel::kPreference);
  }
  double AdequationOnIntentions() const {
    return window_.Adequation(ProviderWindow::Channel::kIntention);
  }
  double AdequationOnPreferences() const {
    return window_.Adequation(ProviderWindow::Channel::kPreference);
  }

  // --- Departure -----------------------------------------------------------

  bool active() const { return store_->active(slot_); }
  /// Marks the provider as departed. Outstanding queued work still
  /// completes (consumers get their answers) but nothing new arrives.
  /// Idempotent: a second Depart on an already-departed provider changes
  /// nothing and bumps no revision — cached characterizations stay valid.
  void Depart() {
    if (!store_->active(slot_)) return;
    store_->set_active(slot_, false);
    ++store_->load_revision(slot_);
    ++store_->char_revision(slot_);
  }
  /// Re-enters a departed (or held-out) provider: it may be matched again.
  /// Characterization windows and utilization history persist — an
  /// autonomous provider returning to the market keeps its memory.
  /// Idempotent like Depart: rejoining an active provider is a no-op.
  void Rejoin() {
    if (store_->active(slot_)) return;
    store_->set_active(slot_, true);
    ++store_->load_revision(slot_);
    ++store_->char_revision(slot_);
  }

  /// True when no query is queued or in service — the provider has no
  /// pending completion event on any simulator, so its state can be handed
  /// to another shard without leaving a dangling callback behind (the
  /// drain condition of the re-partitioning handoff protocol).
  bool Idle() const { return queue_.empty() && !store_->in_service(slot_); }

  /// Total queries performed (allocated to this provider) over the run.
  std::uint64_t performed_count() const { return window_.performed(); }

  // --- Core membership bookkeeping (set by the owning MediationCore) -------

  std::uint32_t core_slot() const { return store_->core_slot(slot_); }
  void set_core_slot(std::uint32_t slot) { store_->core_slot(slot_) = slot; }

  /// Resident bytes of this agent's view + chunked state (the per-agent
  /// share of bytes_per_provider; the store's columns are accounted once,
  /// store-side).
  std::size_t ResidentBytes() const;

 private:
  void StartNextService(des::Simulator& sim);
  /// WindowedSum::Add over the store columns + pooled event log — the exact
  /// arithmetic of common/stats.h's WindowedSum.
  void UtilAdd(SimTime t, double value);
  /// WindowedSum::SumAt: evicts expired events (bumping the utilization
  /// revision exactly when the sum changed shape) and returns the sum.
  double UtilSumAt(SimTime t);

  struct PendingQuery {
    Query query;
    CompletionFn on_completion;
  };
  struct UtilEvent {
    SimTime time;
    double value;
  };
  /// Self-hosted backing state of the standalone constructor.
  struct SelfStore {
    explicit SelfStore(const ProviderAgentConfig& c) : config(c) {
      store.Resize(1);
    }
    ProviderAgentConfig config;
    AgentStore store;
  };

  ProviderAgent(const ProviderProfile& profile,
                std::unique_ptr<SelfStore> self);

  ProviderProfile profile_;
  std::unique_ptr<SelfStore> self_;  // standalone mode only
  const ProviderAgentConfig* config_;
  AgentStore* store_;
  std::uint32_t slot_;
  mem::SlabPool* slabs_ = nullptr;  // null = heap chunks
  ProviderWindow window_;
  mem::ChunkedFifo<UtilEvent> util_events_;
  mem::ChunkedFifo<PendingQuery> queue_;
};

}  // namespace sqlb::runtime

#endif  // SQLB_RUNTIME_PROVIDER_AGENT_H_
