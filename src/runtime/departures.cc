#include "runtime/departures.h"

namespace sqlb::runtime {

const char* DepartureReasonName(DepartureReason reason) {
  switch (reason) {
    case DepartureReason::kDissatisfaction:
      return "dissatisfaction";
    case DepartureReason::kStarvation:
      return "starvation";
    case DepartureReason::kOverutilization:
      return "overutilization";
  }
  return "?";
}

DepartureConfig DepartureConfig::AllEnabled() {
  DepartureConfig config;
  config.consumers_may_leave = true;
  config.provider_dissatisfaction = true;
  config.provider_starvation = true;
  config.provider_overutilization = true;
  return config;
}

DepartureConfig DepartureConfig::DissatisfactionAndStarvation() {
  DepartureConfig config;
  config.consumers_may_leave = true;
  config.provider_dissatisfaction = true;
  config.provider_starvation = true;
  config.provider_overutilization = false;
  return config;
}

void DepartureTally::Add(const DepartureEvent& event) {
  if (!event.is_provider) {
    ++consumers_total_;
    return;
  }
  ++providers_total_;
  const auto r = static_cast<std::size_t>(event.reason);
  ++interest_[r][static_cast<std::size_t>(event.interest_class)];
  ++adaptation_[r][static_cast<std::size_t>(event.adaptation_class)];
  ++capacity_[r][static_cast<std::size_t>(event.capacity_class)];
}

std::uint64_t DepartureTally::ByReason(DepartureReason reason) const {
  const auto r = static_cast<std::size_t>(reason);
  return interest_[r][0] + interest_[r][1] + interest_[r][2];
}

std::uint64_t DepartureTally::ByReasonInterest(DepartureReason reason,
                                               Level level) const {
  return interest_[static_cast<std::size_t>(reason)]
                  [static_cast<std::size_t>(level)];
}

std::uint64_t DepartureTally::ByReasonAdaptation(DepartureReason reason,
                                                 Level level) const {
  return adaptation_[static_cast<std::size_t>(reason)]
                    [static_cast<std::size_t>(level)];
}

std::uint64_t DepartureTally::ByReasonCapacity(DepartureReason reason,
                                               Level level) const {
  return capacity_[static_cast<std::size_t>(reason)]
                  [static_cast<std::size_t>(level)];
}

}  // namespace sqlb::runtime
