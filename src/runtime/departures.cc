#include "runtime/departures.h"

#include <algorithm>

#include "common/status.h"

namespace sqlb::runtime {

const char* DepartureReasonName(DepartureReason reason) {
  switch (reason) {
    case DepartureReason::kDissatisfaction:
      return "dissatisfaction";
    case DepartureReason::kStarvation:
      return "starvation";
    case DepartureReason::kOverutilization:
      return "overutilization";
    case DepartureReason::kChurn:
      return "churn";
  }
  return "?";
}

std::vector<std::uint32_t> ChurnSchedule::InitialHoldouts(
    std::size_t num_providers) const {
  // First event per provider in (time, list position) order decides whether
  // it starts held out.
  std::vector<std::size_t> order(events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return events[a].time < events[b].time;
                   });
  std::vector<char> seen(num_providers, 0);
  std::vector<std::uint32_t> holdouts;
  for (std::size_t i : order) {
    const ProviderChurnEvent& event = events[i];
    SQLB_CHECK(event.provider_index < num_providers,
               "churn event names an unknown provider");
    SQLB_CHECK(event.time >= 0.0, "churn event time must be >= 0");
    if (seen[event.provider_index]) continue;
    seen[event.provider_index] = 1;
    if (event.join) holdouts.push_back(event.provider_index);
  }
  std::sort(holdouts.begin(), holdouts.end());
  return holdouts;
}

ChurnSchedule ChurnSchedule::FlashJoin(SimTime at, std::uint32_t first,
                                       std::uint32_t count) {
  ChurnSchedule schedule;
  schedule.events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    schedule.events.push_back(ProviderChurnEvent{at, /*join=*/true, first + i});
  }
  return schedule;
}

ChurnSchedule ChurnSchedule::MassDeparture(SimTime at, std::uint32_t first,
                                           std::uint32_t count) {
  ChurnSchedule schedule;
  schedule.events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    schedule.events.push_back(
        ProviderChurnEvent{at, /*join=*/false, first + i});
  }
  return schedule;
}

ChurnSchedule ChurnSchedule::LeaveAndRejoin(SimTime leave_at,
                                            SimTime rejoin_at,
                                            std::uint32_t first,
                                            std::uint32_t count) {
  SQLB_CHECK(rejoin_at > leave_at, "rejoin must come after the leave");
  ChurnSchedule schedule = MassDeparture(leave_at, first, count);
  schedule.Append(FlashJoin(rejoin_at, first, count));
  return schedule;
}

ChurnSchedule& ChurnSchedule::Append(const ChurnSchedule& other) {
  events.insert(events.end(), other.events.begin(), other.events.end());
  return *this;
}

DepartureConfig DepartureConfig::AllEnabled() {
  DepartureConfig config;
  config.consumers_may_leave = true;
  config.provider_dissatisfaction = true;
  config.provider_starvation = true;
  config.provider_overutilization = true;
  return config;
}

DepartureConfig DepartureConfig::DissatisfactionAndStarvation() {
  DepartureConfig config;
  config.consumers_may_leave = true;
  config.provider_dissatisfaction = true;
  config.provider_starvation = true;
  config.provider_overutilization = false;
  return config;
}

void DepartureTally::Add(const DepartureEvent& event) {
  if (!event.is_provider) {
    ++consumers_total_;
    return;
  }
  ++providers_total_;
  const auto r = static_cast<std::size_t>(event.reason);
  ++interest_[r][static_cast<std::size_t>(event.interest_class)];
  ++adaptation_[r][static_cast<std::size_t>(event.adaptation_class)];
  ++capacity_[r][static_cast<std::size_t>(event.capacity_class)];
}

std::uint64_t DepartureTally::ByReason(DepartureReason reason) const {
  const auto r = static_cast<std::size_t>(reason);
  return interest_[r][0] + interest_[r][1] + interest_[r][2];
}

std::uint64_t DepartureTally::ByReasonInterest(DepartureReason reason,
                                               Level level) const {
  return interest_[static_cast<std::size_t>(reason)]
                  [static_cast<std::size_t>(level)];
}

std::uint64_t DepartureTally::ByReasonAdaptation(DepartureReason reason,
                                                 Level level) const {
  return adaptation_[static_cast<std::size_t>(reason)]
                    [static_cast<std::size_t>(level)];
}

std::uint64_t DepartureTally::ByReasonCapacity(DepartureReason reason,
                                               Level level) const {
  return capacity_[static_cast<std::size_t>(reason)]
                  [static_cast<std::size_t>(level)];
}

}  // namespace sqlb::runtime
