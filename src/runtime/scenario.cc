#include "runtime/scenario.h"

#include <algorithm>

#include "common/math_util.h"

namespace sqlb::runtime {

double WorkloadSpec::FractionAt(SimTime t, SimTime duration) const {
  switch (kind) {
    case Kind::kConstant:
      return fraction;
    case Kind::kRamp: {
      if (t <= 0.0) return ramp_start;
      if (t >= duration) return ramp_end;
      return Lerp(ramp_start, ramp_end, t / duration);
    }
  }
  return fraction;
}

double WorkloadSpec::MaxFraction() const {
  switch (kind) {
    case Kind::kConstant:
      return fraction;
    case Kind::kRamp:
      return std::max(ramp_start, ramp_end);
  }
  return fraction;
}

WorkloadSpec WorkloadSpec::Constant(double fraction) {
  WorkloadSpec spec;
  spec.kind = Kind::kConstant;
  spec.fraction = fraction;
  return spec;
}

WorkloadSpec WorkloadSpec::Ramp(double start, double end) {
  WorkloadSpec spec;
  spec.kind = Kind::kRamp;
  spec.ramp_start = start;
  spec.ramp_end = end;
  return spec;
}

Status ValidateSystemConfig(const SystemConfig& config) {
  if (config.duration <= 0.0) {
    return Status::InvalidArgument(
        "SystemConfig::duration must be positive (simulated seconds)");
  }
  if (config.query_n < 1) {
    return Status::InvalidArgument(
        "SystemConfig::query_n must be >= 1 (providers per query)");
  }
  for (const ShardFaultEvent& event : config.shard_faults.events) {
    if (event.time < 0.0) {
      return Status::InvalidArgument(
          "SystemConfig::shard_faults has an event scheduled before t = 0");
    }
  }
  if (!config.shard_faults.events.empty() &&
      (config.shard_faults.snapshot_interval <= 0.0 ||
       config.shard_faults.drain_retry_interval <= 0.0)) {
    return Status::InvalidArgument(
        "SystemConfig::shard_faults needs positive snapshot_interval and "
        "drain_retry_interval when fault events are scheduled");
  }
  if (!config.provider_churn.events.empty() &&
      config.churn_retry_interval <= 0.0) {
    return Status::InvalidArgument(
        "SystemConfig::churn_retry_interval must be positive when churn "
        "events are scheduled (a zero interval would retry a deferred "
        "rejoin at the same timestamp forever)");
  }
  return Status::OK();
}

double RunResult::ProviderDeparturePercent() const {
  if (initial_providers == 0) return 0.0;
  return 100.0 * static_cast<double>(tally.providers_total()) /
         static_cast<double>(initial_providers);
}

double RunResult::ConsumerDeparturePercent() const {
  if (initial_consumers == 0) return 0.0;
  return 100.0 * static_cast<double>(tally.consumers_total()) /
         static_cast<double>(initial_consumers);
}

double RunResult::ResponseTimeQuantile(double q) const {
  return metrics.HistogramQuantile(obs::kMetricResponseTime, q);
}

void MergeEffectLogs(std::vector<EffectLog>& logs, RunResult* result,
                     WindowedMean* response_window) {
  // K-way merge over the per-shard cursors: smallest time wins, ties go to
  // the lowest shard index; within a shard the append order stands. K is
  // the shard count (small), so a linear scan per pop beats a heap here.
  std::vector<std::size_t> cursor(logs.size(), 0);
  for (;;) {
    std::size_t best = logs.size();
    SimTime best_time = kSimTimeInfinity;
    for (std::size_t s = 0; s < logs.size(); ++s) {
      if (cursor[s] >= logs[s].entries().size()) continue;
      const SimTime t = logs[s].entries()[cursor[s]].time;
      if (t < best_time) {
        best_time = t;
        best = s;
      }
    }
    if (best == logs.size()) break;
    const EffectLog::Entry& entry = logs[best].entries()[cursor[best]++];
    switch (entry.kind) {
      case EffectLog::Kind::kCompletion:
        ++result->queries_completed;
        result->response_time_all.Add(entry.response_time);
        if (entry.post_warmup) result->response_time.Add(entry.response_time);
        if (response_window != nullptr) {
          response_window->Add(entry.response_time);
        }
        break;
      case EffectLog::Kind::kInfeasible:
        ++result->queries_infeasible;
        break;
    }
  }
  for (EffectLog& log : logs) log.Clear();
}

}  // namespace sqlb::runtime
