#include "runtime/scenario.h"

#include <algorithm>

#include "common/math_util.h"

namespace sqlb::runtime {

double WorkloadSpec::FractionAt(SimTime t, SimTime duration) const {
  switch (kind) {
    case Kind::kConstant:
      return fraction;
    case Kind::kRamp: {
      if (t <= 0.0) return ramp_start;
      if (t >= duration) return ramp_end;
      return Lerp(ramp_start, ramp_end, t / duration);
    }
  }
  return fraction;
}

double WorkloadSpec::MaxFraction() const {
  switch (kind) {
    case Kind::kConstant:
      return fraction;
    case Kind::kRamp:
      return std::max(ramp_start, ramp_end);
  }
  return fraction;
}

WorkloadSpec WorkloadSpec::Constant(double fraction) {
  WorkloadSpec spec;
  spec.kind = Kind::kConstant;
  spec.fraction = fraction;
  return spec;
}

WorkloadSpec WorkloadSpec::Ramp(double start, double end) {
  WorkloadSpec spec;
  spec.kind = Kind::kRamp;
  spec.ramp_start = start;
  spec.ramp_end = end;
  return spec;
}

double RunResult::ProviderDeparturePercent() const {
  if (initial_providers == 0) return 0.0;
  return 100.0 * static_cast<double>(tally.providers_total()) /
         static_cast<double>(initial_providers);
}

double RunResult::ConsumerDeparturePercent() const {
  if (initial_consumers == 0) return 0.0;
  return 100.0 * static_cast<double>(tally.consumers_total()) /
         static_cast<double>(initial_consumers);
}

}  // namespace sqlb::runtime
