#include "runtime/provider_agent.h"

#include "common/status.h"
#include "methods/mariposa.h"

namespace sqlb::runtime {

ProviderAgent::ProviderAgent(const ProviderProfile& profile,
                             const ProviderAgentConfig& config)
    : ProviderAgent(profile, std::make_unique<SelfStore>(config)) {}

ProviderAgent::ProviderAgent(const ProviderProfile& profile,
                             std::unique_ptr<SelfStore> self)
    : profile_(profile),
      self_(std::move(self)),
      config_(&self_->config),
      store_(&self_->store),
      slot_(0),
      window_(config_->window, /*lazy=*/false),
      util_events_(/*eager_first_chunk=*/true),
      queue_(/*eager_first_chunk=*/true) {
  SQLB_CHECK(profile.capacity > 0.0, "provider capacity must be positive");
}

ProviderAgent::ProviderAgent(const ProviderProfile& profile,
                             const ProviderAgentConfig* config,
                             AgentStore* store, std::uint32_t slot)
    : profile_(profile),
      config_(config),
      store_(store),
      slot_(slot),
      window_(config->window, /*lazy=*/store->pooled()),
      util_events_(/*eager_first_chunk=*/!store->pooled()),
      queue_(/*eager_first_chunk=*/!store->pooled()) {
  SQLB_CHECK(profile.capacity > 0.0, "provider capacity must be positive");
  SQLB_CHECK(slot_ < store_->count(), "agent slot out of range");
}

void ProviderAgent::SetArena(mem::AgentArena* arena) {
  slabs_ = arena != nullptr ? arena->slabs() : nullptr;
  window_.set_chunk_pool(slabs_);
}

double ProviderAgent::ComputeIntention(double preference, SimTime now) {
  return ProviderIntention(preference, Utilization(now),
                           SatisfactionOnPreferences(), config_->intention);
}

double ProviderAgent::ComputeBidPrice(double preference) const {
  return MariposaAskingPrice(preference, config_->bid_price_floor);
}

double ProviderAgent::EstimateDelay(double units) const {
  return BacklogSeconds() + units / profile_.capacity;
}

void ProviderAgent::UtilAdd(SimTime t, double value) {
  SQLB_CHECK(t >= store_->util_last_time(slot_),
             "windowed sum times must be non-decreasing");
  store_->util_last_time(slot_) = t;
  SQLB_CHECK(util_events_.push_back(UtilEvent{t, value}, slabs_),
             "agent pool out of memory: raise agent_pool.max_bytes");
  store_->util_sum(slot_) += value;
  ++store_->util_revision(slot_);
}

double ProviderAgent::UtilSumAt(SimTime t) {
  const SimTime width = config_->utilization_window;
  bool evicted = false;
  while (!util_events_.empty() && util_events_.front().time <= t - width) {
    store_->util_sum(slot_) -= util_events_.front().value;
    util_events_.pop_front();
    evicted = true;
  }
  if (util_events_.empty()) store_->util_sum(slot_) = 0.0;
  if (evicted) ++store_->util_revision(slot_);
  return store_->util_sum(slot_);
}

double ProviderAgent::Utilization(SimTime now) {
  // Any eviction this read performs invalidates cached characterizations —
  // fold it into the coarse stamp so the cache sees reads-with-evictions
  // from every path (probes, gossip, departure checks), not just events.
  const std::uint64_t before = store_->util_revision(slot_);
  const double sum = UtilSumAt(now);
  if (store_->util_revision(slot_) != before) ++store_->char_revision(slot_);
  return sum / (profile_.capacity * config_->utilization_window);
}

double ProviderAgent::CommittedUtilization(SimTime now) {
  return Utilization(now) +
         store_->backlog_units(slot_) /
             (profile_.capacity * config_->utilization_window);
}

void ProviderAgent::OnProposed(double shown_intention, double preference,
                               bool performed) {
  const std::uint64_t before = window_.satisfaction_revision();
  window_.Record(shown_intention, preference, performed);
  if (window_.satisfaction_revision() != before) {
    ++store_->char_revision(slot_);
  }
}

void ProviderAgent::Enqueue(des::Simulator& sim, const Query& query,
                            CompletionFn on_completion) {
  SQLB_CHECK(query.units > 0.0, "query treatment cost must be positive");
  UtilAdd(sim.Now(), query.units);
  store_->total_allocated_units(slot_) += query.units;
  store_->backlog_units(slot_) += query.units;
  ++store_->load_revision(slot_);
  ++store_->char_revision(slot_);
  SQLB_CHECK(
      queue_.push_back(PendingQuery{query, std::move(on_completion)}, slabs_),
      "agent pool out of memory: raise agent_pool.max_bytes");
  if (!store_->in_service(slot_)) StartNextService(sim);
}

void ProviderAgent::StartNextService(des::Simulator& sim) {
  SQLB_CHECK(!queue_.empty(), "no query to serve");
  store_->set_in_service(slot_, true);
  const double service_seconds = queue_.front().query.units / profile_.capacity;
  sim.ScheduleAfter(service_seconds, [this](des::Simulator& s) {
    PendingQuery done = std::move(queue_.front());
    queue_.pop_front();
    store_->backlog_units(slot_) -= done.query.units;
    if (store_->backlog_units(slot_) < 1e-9) {
      store_->backlog_units(slot_) = 0.0;
    }
    ++store_->load_revision(slot_);
    ++store_->char_revision(slot_);
    store_->set_in_service(slot_, false);
    if (!queue_.empty()) StartNextService(s);
    if (done.on_completion) {
      done.on_completion(done.query, profile_.id, s.Now());
    }
  });
}

std::size_t ProviderAgent::ResidentBytes() const {
  return sizeof(ProviderAgent) + window_.resident_bytes() +
         util_events_.resident_bytes() + queue_.resident_bytes();
}

}  // namespace sqlb::runtime
