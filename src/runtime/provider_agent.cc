#include "runtime/provider_agent.h"

#include "common/status.h"
#include "methods/mariposa.h"

namespace sqlb::runtime {

ProviderAgent::ProviderAgent(const ProviderProfile& profile,
                             const ProviderAgentConfig& config)
    : profile_(profile),
      config_(config),
      window_(config.window),
      allocated_units_(config.utilization_window) {
  SQLB_CHECK(profile.capacity > 0.0, "provider capacity must be positive");
}

double ProviderAgent::ComputeIntention(double preference, SimTime now) {
  return ProviderIntention(preference, Utilization(now),
                           SatisfactionOnPreferences(), config_.intention);
}

double ProviderAgent::ComputeBidPrice(double preference) const {
  return MariposaAskingPrice(preference, config_.bid_price_floor);
}

double ProviderAgent::EstimateDelay(double units) const {
  return BacklogSeconds() + units / profile_.capacity;
}

double ProviderAgent::Utilization(SimTime now) {
  // Any eviction this read performs invalidates cached characterizations —
  // fold it into the coarse stamp so the cache sees reads-with-evictions
  // from every path (probes, gossip, departure checks), not just events.
  const std::uint64_t before = allocated_units_.revision();
  const double sum = allocated_units_.SumAt(now);
  if (allocated_units_.revision() != before) ++char_revision_;
  return sum / (profile_.capacity * allocated_units_.width());
}

double ProviderAgent::CommittedUtilization(SimTime now) {
  return Utilization(now) +
         backlog_units_ / (profile_.capacity * allocated_units_.width());
}

void ProviderAgent::OnProposed(double shown_intention, double preference,
                               bool performed) {
  const std::uint64_t before = window_.satisfaction_revision();
  window_.Record(shown_intention, preference, performed);
  if (window_.satisfaction_revision() != before) ++char_revision_;
}

void ProviderAgent::Enqueue(des::Simulator& sim, const Query& query,
                            CompletionFn on_completion) {
  SQLB_CHECK(query.units > 0.0, "query treatment cost must be positive");
  allocated_units_.Add(sim.Now(), query.units);
  total_allocated_units_ += query.units;
  backlog_units_ += query.units;
  ++load_revision_;
  ++char_revision_;
  queue_.push_back(PendingQuery{query, std::move(on_completion)});
  if (!in_service_) StartNextService(sim);
}

void ProviderAgent::StartNextService(des::Simulator& sim) {
  SQLB_CHECK(!queue_.empty(), "no query to serve");
  in_service_ = true;
  const double service_seconds = queue_.front().query.units / profile_.capacity;
  sim.ScheduleAfter(service_seconds, [this](des::Simulator& s) {
    PendingQuery done = std::move(queue_.front());
    queue_.pop_front();
    backlog_units_ -= done.query.units;
    if (backlog_units_ < 1e-9) backlog_units_ = 0.0;
    ++load_revision_;
    ++char_revision_;
    in_service_ = false;
    if (!queue_.empty()) StartNextService(s);
    if (done.on_completion) {
      done.on_completion(done.query, profile_.id, s.Now());
    }
  });
}

}  // namespace sqlb::runtime
