#ifndef SQLB_RUNTIME_REPUTATION_H_
#define SQLB_RUNTIME_REPUTATION_H_

#include <vector>

#include "common/types.h"

/// \file
/// A provider-reputation substrate for Definition 7's rep(p) term. The
/// paper leaves the reputation mechanism open ("it is taken into account as
/// much as participants consider it important", Section 3.3); this registry
/// implements the common exponentially weighted moving average over
/// consumer feedback, which is enough to exercise the upsilon tradeoff
/// (bench/ablation_upsilon_reputation and the examples).

namespace sqlb::runtime {

class ReputationRegistry {
 public:
  /// All providers start at `initial` reputation (in [-1, 1]).
  ReputationRegistry(std::size_t num_providers, double initial = 0.0,
                     double smoothing = 0.1);

  /// rep(p) in [-1, 1].
  double Get(ProviderId p) const;

  /// Folds one feedback value (in [-1, 1]) into p's reputation:
  /// rep <- (1 - smoothing) * rep + smoothing * feedback.
  void AddFeedback(ProviderId p, double feedback);

  /// Overwrites p's reputation (tests, scripted scenarios).
  void Set(ProviderId p, double reputation);

  std::size_t size() const { return reputation_.size(); }

 private:
  std::vector<double> reputation_;
  double smoothing_;
};

}  // namespace sqlb::runtime

#endif  // SQLB_RUNTIME_REPUTATION_H_
