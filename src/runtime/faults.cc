#include "runtime/faults.h"

#include "common/rng.h"
#include "common/status.h"

namespace sqlb::runtime {

const char* ReissueReasonName(ReissueReason reason) {
  switch (reason) {
    case ReissueReason::kInFlight:
      return "in_flight";
    case ReissueReason::kIntake:
      return "intake";
  }
  return "?";
}

FaultSchedule FaultSchedule::KillAt(SimTime time, std::uint32_t shard) {
  FaultSchedule schedule;
  schedule.events.push_back(ShardFaultEvent{time, shard});
  return schedule;
}

FaultSchedule FaultSchedule::RandomKills(SimTime start, SimTime end,
                                         double kills_per_1000s,
                                         std::uint32_t num_shards,
                                         std::uint64_t seed) {
  SQLB_CHECK(end >= start, "RandomKills window ends before it starts");
  SQLB_CHECK(kills_per_1000s > 0.0, "RandomKills rate must be positive");
  SQLB_CHECK(num_shards > 0, "RandomKills needs at least one shard");
  FaultSchedule schedule;
  Rng rng(seed ^ 0xfa117a11ULL);
  const double rate = kills_per_1000s / 1000.0;
  SimTime t = start + rng.Exponential(rate);
  while (t <= end) {
    const auto shard = static_cast<std::uint32_t>(rng.NextBounded(num_shards));
    schedule.events.push_back(ShardFaultEvent{t, shard});
    t += rng.Exponential(rate);
  }
  return schedule;
}

FaultSchedule& FaultSchedule::Append(const FaultSchedule& other) {
  events.insert(events.end(), other.events.begin(), other.events.end());
  return *this;
}

}  // namespace sqlb::runtime
