#ifndef SQLB_RUNTIME_MEDIATION_SYSTEM_H_
#define SQLB_RUNTIME_MEDIATION_SYSTEM_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "core/allocation.h"
#include "des/arrival_process.h"
#include "des/simulator.h"
#include "des/time_series.h"
#include "matchmaking/matchmaker.h"
#include "model/metrics.h"
#include "runtime/consumer_agent.h"
#include "runtime/departures.h"
#include "runtime/provider_agent.h"
#include "runtime/reputation.h"
#include "workload/population.h"

/// \file
/// The mono-mediator distributed information system of Section 6.1, run on
/// the discrete-event kernel: Poisson query arrivals, the Algorithm 1
/// mediation pipeline (matchmaking -> intention gathering -> scoring/
/// selection by the pluggable AllocationMethod -> result dispatch), FIFO
/// service at providers, the Section 3 characterization bookkeeping, metric
/// probes, and the Section 6.3.2 departure rules.

namespace sqlb::runtime {

/// Workload intensity over a run, as a fraction of total system capacity.
struct WorkloadSpec {
  enum class Kind { kConstant, kRamp };
  Kind kind = Kind::kConstant;
  /// Constant: the fixed fraction.
  double fraction = 0.8;
  /// Ramp: linear from ramp_start (t = 0) to ramp_end (t = duration). The
  /// paper's quality experiments use 0.3 -> 1.0 (Section 6.3.1).
  double ramp_start = 0.3;
  double ramp_end = 1.0;

  double FractionAt(SimTime t, SimTime duration) const;
  double MaxFraction() const;

  static WorkloadSpec Constant(double fraction);
  static WorkloadSpec Ramp(double start, double end);
};

/// Everything a run needs (Table 2 defaults).
struct SystemConfig {
  PopulationConfig population;
  WorkloadSpec workload = WorkloadSpec::Ramp(0.3, 1.0);
  /// Simulated run length in seconds (paper: 10,000).
  SimTime duration = 10000.0;
  /// Metric-probe sampling period.
  SimTime sample_interval = 50.0;
  /// Completions of queries issued before this time are excluded from the
  /// headline response-time statistic (steady-state measurement).
  SimTime stats_warmup = 500.0;
  /// q.n for every generated query (paper: 1).
  std::uint32_t query_n = 1;

  ConsumerAgentConfig consumer;
  ProviderAgentConfig provider;
  DepartureConfig departures;  // all disabled = captive participants

  /// When true, consumers push completion feedback into the reputation
  /// registry (ignored by the paper's upsilon = 1 setup; used by the
  /// upsilon ablation and examples).
  bool reputation_feedback = false;

  std::uint64_t seed = 42;
  /// Collect time series (disable for micro-benchmarks).
  bool record_series = true;
};

/// Everything a run produces.
struct RunResult {
  std::string method_name;
  SimTime duration = 0.0;

  // Counters.
  std::uint64_t queries_issued = 0;
  std::uint64_t queries_completed = 0;
  std::uint64_t queries_infeasible = 0;  // no active provider remained

  // Response time over completions of post-warmup queries, and over all.
  RunningStats response_time;
  RunningStats response_time_all;

  // Departures.
  std::vector<DepartureEvent> departures;
  DepartureTally tally;
  std::size_t initial_providers = 0;
  std::size_t initial_consumers = 0;
  std::size_t remaining_providers = 0;
  std::size_t remaining_consumers = 0;

  // Time series keyed as documented on MediationSystem::kSeries* constants.
  des::SeriesSet series;

  /// Percentage (0-100) of providers that departed.
  double ProviderDeparturePercent() const;
  /// Percentage (0-100) of consumers that departed.
  double ConsumerDeparturePercent() const;
};

/// One simulated system + one allocation method = one run.
class MediationSystem {
 public:
  /// The system does not own `method`; it must outlive Run(). A fresh
  /// method instance per run keeps runs independent.
  MediationSystem(const SystemConfig& config, AllocationMethod* method);

  /// Executes the full scenario and returns the result. Call once.
  RunResult Run();

  // --- Series keys (Figure 4's subplots map onto these) -------------------
  static constexpr const char* kSeriesProvSatIntMean = "prov.sat.int.mean";
  static constexpr const char* kSeriesProvSatPrefMean = "prov.sat.pref.mean";
  static constexpr const char* kSeriesProvAdqIntMean = "prov.adq.int.mean";
  static constexpr const char* kSeriesProvAdqPrefMean = "prov.adq.pref.mean";
  static constexpr const char* kSeriesProvAllocSatIntMean =
      "prov.allocsat.int.mean";
  static constexpr const char* kSeriesProvAllocSatPrefMean =
      "prov.allocsat.pref.mean";
  static constexpr const char* kSeriesProvSatIntFair = "prov.sat.int.fair";
  static constexpr const char* kSeriesProvSatPrefFair = "prov.sat.pref.fair";
  static constexpr const char* kSeriesUtMean = "prov.ut.mean";
  static constexpr const char* kSeriesUtFair = "prov.ut.fair";
  static constexpr const char* kSeriesConsSatMean = "cons.sat.mean";
  static constexpr const char* kSeriesConsAdqMean = "cons.adq.mean";
  static constexpr const char* kSeriesConsAllocSatMean = "cons.allocsat.mean";
  static constexpr const char* kSeriesConsSatFair = "cons.sat.fair";
  static constexpr const char* kSeriesResponseTime = "rt.window";
  static constexpr const char* kSeriesActiveProviders = "active.providers";
  static constexpr const char* kSeriesActiveConsumers = "active.consumers";
  static constexpr const char* kSeriesWorkloadFraction = "workload.fraction";

  // Introspection for tests.
  const Population& population() const { return population_; }
  const ProviderAgent& provider_agent(ProviderId id) const;
  const ConsumerAgent& consumer_agent(ConsumerId id) const;
  ReputationRegistry& reputation() { return reputation_; }

 private:
  struct PendingResponse {
    SimTime issue_time;
    std::uint32_t outstanding;
  };

  void OnArrival(des::Simulator& sim);
  void AllocateOne(des::Simulator& sim, const Query& query);
  void OnQueryCompleted(const Query& query, ProviderId performer,
                        SimTime completion_time);
  void SampleMetrics(des::Simulator& sim);
  void RunDepartureChecks(des::Simulator& sim);
  void DepartProvider(std::size_t index, DepartureReason reason,
                      SimTime now);
  void DepartConsumer(std::size_t index, SimTime now);
  double ArrivalRateAt(SimTime t) const;

  SystemConfig config_;
  AllocationMethod* method_;
  Population population_;
  des::Simulator sim_;
  Rng rng_;
  Rng query_class_rng_;
  Rng consumer_pick_rng_;

  std::vector<ProviderAgent> providers_;
  std::vector<ConsumerAgent> consumers_;
  /// Indices of still-active participants (swap-removed on departure).
  std::vector<std::uint32_t> active_providers_;
  std::vector<std::uint32_t> active_consumers_;

  AcceptAllMatchmaker matchmaker_;
  ReputationRegistry reputation_;

  QueryId next_query_id_ = 0;
  std::unordered_map<QueryId, PendingResponse> pending_;
  WindowedMean response_window_;

  // Chronic-utilization bookkeeping for the starvation rule: allocated
  // units and timestamp at each provider's previous departure check.
  std::vector<double> units_at_last_check_;
  SimTime last_check_time_ = 0.0;
  // Consecutive failed assessments per consumer (hysteresis).
  std::vector<std::uint32_t> consumer_violations_;

  RunResult result_;
  bool ran_ = false;

  // Scratch buffers reused across allocations (the hot path).
  AllocationRequest scratch_request_;
  std::vector<double> scratch_consumer_pref_;
  std::vector<double> scratch_provider_pref_;
  std::vector<double> scratch_ci_;
  std::vector<double> scratch_selected_ci_;
};

/// Builds a system around `method`, runs it, returns the result.
RunResult RunScenario(const SystemConfig& config, AllocationMethod* method);

}  // namespace sqlb::runtime

#endif  // SQLB_RUNTIME_MEDIATION_SYSTEM_H_
