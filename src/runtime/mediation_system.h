#ifndef SQLB_RUNTIME_MEDIATION_SYSTEM_H_
#define SQLB_RUNTIME_MEDIATION_SYSTEM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "core/allocation.h"
#include "des/arrival_process.h"
#include "des/simulator.h"
#include "des/time_series.h"
#include "model/metrics.h"
#include "runtime/consumer_agent.h"
#include "runtime/departures.h"
#include "runtime/mediation_core.h"
#include "runtime/provider_agent.h"
#include "runtime/reputation.h"
#include "runtime/scenario.h"
#include "workload/population.h"

/// \file
/// The mono-mediator distributed information system of Section 6.1, run on
/// the discrete-event kernel: Poisson query arrivals, the Algorithm 1
/// mediation pipeline (matchmaking -> intention gathering -> scoring/
/// selection by the pluggable AllocationMethod -> result dispatch), FIFO
/// service at providers, the Section 3 characterization bookkeeping, metric
/// probes, and the Section 6.3.2 departure rules.
///
/// The pipeline itself lives in runtime/mediation_core.h (shared with the
/// sharded tier, src/shard/); this class owns the population, the arrival
/// process, the metric probes and the consumer-side departure rule, and
/// runs exactly one core over the whole provider population.

namespace sqlb::runtime {

/// One simulated system + one allocation method = one run.
class MediationSystem {
 public:
  /// The system does not own `method`; it must outlive Run(). A fresh
  /// method instance per run keeps runs independent.
  MediationSystem(const SystemConfig& config, AllocationMethod* method);

  /// Executes the full scenario and returns the result. Call once.
  RunResult Run();

  // --- Series keys (Figure 4's subplots map onto these) -------------------
  static constexpr const char* kSeriesProvSatIntMean = "prov.sat.int.mean";
  static constexpr const char* kSeriesProvSatPrefMean = "prov.sat.pref.mean";
  static constexpr const char* kSeriesProvAdqIntMean = "prov.adq.int.mean";
  static constexpr const char* kSeriesProvAdqPrefMean = "prov.adq.pref.mean";
  static constexpr const char* kSeriesProvAllocSatIntMean =
      "prov.allocsat.int.mean";
  static constexpr const char* kSeriesProvAllocSatPrefMean =
      "prov.allocsat.pref.mean";
  static constexpr const char* kSeriesProvSatIntFair = "prov.sat.int.fair";
  static constexpr const char* kSeriesProvSatPrefFair = "prov.sat.pref.fair";
  static constexpr const char* kSeriesUtMean = "prov.ut.mean";
  static constexpr const char* kSeriesUtFair = "prov.ut.fair";
  static constexpr const char* kSeriesConsSatMean = "cons.sat.mean";
  static constexpr const char* kSeriesConsAdqMean = "cons.adq.mean";
  static constexpr const char* kSeriesConsAllocSatMean = "cons.allocsat.mean";
  static constexpr const char* kSeriesConsSatFair = "cons.sat.fair";
  static constexpr const char* kSeriesResponseTime = "rt.window";
  static constexpr const char* kSeriesActiveProviders = "active.providers";
  static constexpr const char* kSeriesActiveConsumers = "active.consumers";
  static constexpr const char* kSeriesWorkloadFraction = "workload.fraction";

  // Introspection for tests.
  const Population& population() const { return population_; }
  const ProviderAgent& provider_agent(ProviderId id) const;
  const ConsumerAgent& consumer_agent(ConsumerId id) const;
  ReputationRegistry& reputation() { return reputation_; }
  const MediationCore& core() const { return *core_; }

 private:
  void OnArrival(des::Simulator& sim);
  void SampleMetrics(des::Simulator& sim);
  void RunDepartureChecks(des::Simulator& sim);
  double ArrivalRateAt(SimTime t) const;

  SystemConfig config_;
  AllocationMethod* method_;
  Population population_;
  des::Simulator sim_;
  Rng rng_;
  Rng query_class_rng_;
  Rng consumer_pick_rng_;

  std::vector<ProviderAgent> providers_;
  std::vector<ConsumerAgent> consumers_;
  /// Indices of still-active consumers (swap-removed on departure); the
  /// active provider list lives in the core.
  std::vector<std::uint32_t> active_consumers_;

  ReputationRegistry reputation_;

  QueryId next_query_id_ = 0;
  WindowedMean response_window_;

  // Consecutive failed assessments per consumer (hysteresis).
  std::vector<std::uint32_t> consumer_violations_;

  RunResult result_;
  bool ran_ = false;

  /// The Algorithm-1 pipeline over the whole provider population
  /// (constructed after the participant vectors are filled).
  std::optional<MediationCore> core_;
};

/// Builds a system around `method`, runs it, returns the result.
RunResult RunScenario(const SystemConfig& config, AllocationMethod* method);

}  // namespace sqlb::runtime

#endif  // SQLB_RUNTIME_MEDIATION_SYSTEM_H_
