#ifndef SQLB_RUNTIME_MEDIATION_SYSTEM_H_
#define SQLB_RUNTIME_MEDIATION_SYSTEM_H_

#include <functional>
#include <optional>
#include <vector>

#include "core/allocation.h"
#include "runtime/mediation_core.h"
#include "runtime/scenario.h"
#include "runtime/scenario_engine.h"

/// \file
/// The mono-mediator distributed information system of Section 6.1: the
/// thinnest possible configuration of the shared scenario driver
/// (runtime/scenario_engine.h) — one Algorithm-1 pipeline
/// (runtime/mediation_core.h) over the whole provider population, every
/// arriving query mediated inline on the shared kernel.
///
/// Population setup, Poisson arrivals, metric probes and the Section 6.3.2
/// departure schedule all live in the ScenarioEngine; this class only
/// supplies the mediation step and the one core, which is what the sharded
/// tier (src/shard/) generalizes to M cores plus routing/batching/parity
/// policies.

namespace sqlb::runtime {

/// One simulated system + one allocation method = one run.
class MediationSystem : private ScenarioEngine::Driver {
 public:
  /// The system does not own `method`; it must outlive Run(). A fresh
  /// method instance per run keeps runs independent.
  MediationSystem(const SystemConfig& config, AllocationMethod* method);

  /// Executes the full scenario and returns the result. Call once.
  RunResult Run();

  // --- Series keys (Figure 4's subplots map onto these) -------------------
  // Aliases of the engine's keys: every experiment/bench/test reads them
  // through this class, and the sharded tier emits the same names.
  static constexpr const char* kSeriesProvSatIntMean =
      ScenarioEngine::kSeriesProvSatIntMean;
  static constexpr const char* kSeriesProvSatPrefMean =
      ScenarioEngine::kSeriesProvSatPrefMean;
  static constexpr const char* kSeriesProvAdqIntMean =
      ScenarioEngine::kSeriesProvAdqIntMean;
  static constexpr const char* kSeriesProvAdqPrefMean =
      ScenarioEngine::kSeriesProvAdqPrefMean;
  static constexpr const char* kSeriesProvAllocSatIntMean =
      ScenarioEngine::kSeriesProvAllocSatIntMean;
  static constexpr const char* kSeriesProvAllocSatPrefMean =
      ScenarioEngine::kSeriesProvAllocSatPrefMean;
  static constexpr const char* kSeriesProvSatIntFair =
      ScenarioEngine::kSeriesProvSatIntFair;
  static constexpr const char* kSeriesProvSatPrefFair =
      ScenarioEngine::kSeriesProvSatPrefFair;
  static constexpr const char* kSeriesUtMean = ScenarioEngine::kSeriesUtMean;
  static constexpr const char* kSeriesUtFair = ScenarioEngine::kSeriesUtFair;
  static constexpr const char* kSeriesConsSatMean =
      ScenarioEngine::kSeriesConsSatMean;
  static constexpr const char* kSeriesConsAdqMean =
      ScenarioEngine::kSeriesConsAdqMean;
  static constexpr const char* kSeriesConsAllocSatMean =
      ScenarioEngine::kSeriesConsAllocSatMean;
  static constexpr const char* kSeriesConsSatFair =
      ScenarioEngine::kSeriesConsSatFair;
  static constexpr const char* kSeriesResponseTime =
      ScenarioEngine::kSeriesResponseTime;
  static constexpr const char* kSeriesActiveProviders =
      ScenarioEngine::kSeriesActiveProviders;
  static constexpr const char* kSeriesActiveConsumers =
      ScenarioEngine::kSeriesActiveConsumers;
  static constexpr const char* kSeriesWorkloadFraction =
      ScenarioEngine::kSeriesWorkloadFraction;

  // Introspection for tests.
  const Population& population() const { return engine_.population(); }
  const ProviderAgent& provider_agent(ProviderId id) const;
  const ConsumerAgent& consumer_agent(ConsumerId id) const;
  ReputationRegistry& reputation() { return engine_.reputation(); }
  const MediationCore& core() const { return *core_; }
  const ScenarioEngine& engine() const { return engine_; }

 private:
  // ScenarioEngine::Driver — the mono-mediator policy: mediate inline on
  // the one core.
  void OnQueryArrival(des::Simulator& sim, const Query& query) override;
  void RunProviderDepartureChecks(SimTime now, double optimal_ut) override;
  ChurnOutcome OnProviderChurn(des::Simulator& sim,
                               const ProviderChurnEvent& event) override;
  /// Crash + restart in place: with one mediator there is no survivor to
  /// fail over to, so a fault restores the core from the last snapshot,
  /// re-admits snapshot-orphaned members fresh, and re-issues the lost
  /// in-flight queries. Exactly the sharded tier's last-live-shard restart
  /// path, which keeps the M = 1 parity pin bit-exact under kill schedules.
  void OnShardFault(des::Simulator& sim, const ShardFaultEvent& event) override;
  void VisitActiveProviders(
      const std::function<void(ProviderAgent&)>& fn) override;
  std::size_t ActiveProviderCount() const override;
  /// Arms the periodic crash-consistent snapshot when a fault schedule is
  /// configured.
  void StartAuxiliaryTasks(des::Simulator& sim) override;
  /// Default serial drain, then folds the core's suppressed-completion
  /// tally into the coordinator registry (the engine merges registries
  /// right after Execute returns).
  void Execute(des::Simulator& sim, SimTime duration) override;

  ScenarioEngine engine_;
  AllocationMethod* method_;

  /// The Algorithm-1 pipeline over the whole provider population
  /// (constructed after the engine filled the participant vectors).
  std::optional<MediationCore> core_;

  /// Last crash-consistent snapshot (empty until the first snapshot tick).
  MediationCore::CoreSnapshot snapshot_;
  des::PeriodicTask snapshot_task_;

  // Failover accounting, on the coordinator lane under the same metric
  // names as the sharded tier (the parity pins compare merged registries).
  obs::Counter* shard_crashes_counter_ = nullptr;
  obs::Counter* reissued_counter_ = nullptr;
  obs::Counter* reissued_reason_counters_[kNumReissueReasons] = {};
  obs::Counter* restored_counter_ = nullptr;
  obs::Counter* orphaned_counter_ = nullptr;
  obs::Counter* snapshots_counter_ = nullptr;
  obs::Histogram* reissue_delay_hist_ = nullptr;
};

/// Builds a system around `method`, runs it, returns the result.
RunResult RunScenario(const SystemConfig& config, AllocationMethod* method);

}  // namespace sqlb::runtime

#endif  // SQLB_RUNTIME_MEDIATION_SYSTEM_H_
