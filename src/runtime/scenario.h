#ifndef SQLB_RUNTIME_SCENARIO_H_
#define SQLB_RUNTIME_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "des/time_series.h"
#include "mem/agent_arena.h"
#include "obs/observability.h"
#include "runtime/consumer_agent.h"
#include "runtime/departures.h"
#include "runtime/faults.h"
#include "runtime/provider_agent.h"
#include "workload/population.h"

/// \file
/// What a run needs and what a run produces, independent of who runs it:
/// the mono-mediator `runtime::MediationSystem` and the sharded
/// `shard::ShardedMediationSystem` both consume a SystemConfig and emit a
/// RunResult, which is what lets every experiment, bench and test compare
/// the two tiers on identical terms.

namespace sqlb::runtime {

/// Workload intensity over a run, as a fraction of total system capacity.
struct WorkloadSpec {
  enum class Kind { kConstant, kRamp };
  Kind kind = Kind::kConstant;
  /// Constant: the fixed fraction.
  double fraction = 0.8;
  /// Ramp: linear from ramp_start (t = 0) to ramp_end (t = duration). The
  /// paper's quality experiments use 0.3 -> 1.0 (Section 6.3.1).
  double ramp_start = 0.3;
  double ramp_end = 1.0;

  double FractionAt(SimTime t, SimTime duration) const;
  double MaxFraction() const;

  static WorkloadSpec Constant(double fraction);
  static WorkloadSpec Ramp(double start, double end);
};

/// Everything a run needs (Table 2 defaults).
struct SystemConfig {
  PopulationConfig population;
  WorkloadSpec workload = WorkloadSpec::Ramp(0.3, 1.0);
  /// Simulated run length in seconds (paper: 10,000).
  SimTime duration = 10000.0;
  /// Metric-probe sampling period.
  SimTime sample_interval = 50.0;
  /// Completions of queries issued before this time are excluded from the
  /// headline response-time statistic (steady-state measurement).
  SimTime stats_warmup = 500.0;
  /// q.n for every generated query (paper: 1).
  std::uint32_t query_n = 1;

  ConsumerAgentConfig consumer;
  ProviderAgentConfig provider;
  DepartureConfig departures;  // all disabled = captive participants

  /// Scheduled provider joins and leaves (runtime/departures.h), executed
  /// by the ScenarioEngine on top of whatever the departure rules do. Empty
  /// = the classic fixed population. Providers whose first event is a join
  /// start held out of the initial membership.
  ChurnSchedule provider_churn;
  /// Retry cadence for deferred churn joins: a scheduled rejoin whose
  /// provider still drains in-flight work from its previous membership is
  /// re-attempted this often until the drain completes (the membership
  /// analogue of the re-partitioning handoff's seal -> drain -> transfer
  /// rule; see ScenarioEngine::Driver::OnProviderChurn).
  SimTime churn_retry_interval = 5.0;

  /// Scheduled mediator-shard kills (runtime/faults.h), executed by the
  /// ScenarioEngine at kFailover barriers. Empty = immortal mediators.
  /// Non-empty schedules also arm the periodic snapshot task (cadence
  /// FaultSchedule::snapshot_interval) in drivers that support failover.
  FaultSchedule shard_faults;

  /// When true, consumers push completion feedback into the reputation
  /// registry (ignored by the paper's upsilon = 1 setup; used by the
  /// upsilon ablation and examples).
  bool reputation_feedback = false;

  std::uint64_t seed = 42;
  /// Collect time series (disable for micro-benchmarks).
  bool record_series = true;

  /// Event-driven provider characterization cache (runtime/mediation_core.h):
  /// Algorithm 1's gather step revalidates each member's candidate snapshot
  /// against the provider's event stamps instead of recomputing it per
  /// query. Results are bit-identical either way (the cache refreshes with
  /// the exact state transitions and decay predicates that change each
  /// field — pinned in tests/shard/cache_parity_test.cc); disable only to
  /// measure the cache itself (bench/micro_allocation.cc) or to run the
  /// parity twin.
  bool characterization_cache = true;

  /// Pooled agent storage (src/mem/): when enabled, every provider agent's
  /// chunked state — service queue, utilization event log, characterization
  /// ring — materializes lazily from per-lane slab arenas instead of being
  /// heap-allocated eagerly at construction. The arithmetic path is
  /// identical in both modes, so results are bit-identical (pinned in
  /// tests/shard/agent_pool_parity_test.cc); enabling the pool changes only
  /// residency — ~4x+ fewer bytes per provider at scale, NUMA-homed pages
  /// under topology-aware workers.
  mem::AgentPoolConfig agent_pool;

  /// Observability gates (src/obs/): hot-path latency histograms and the
  /// per-query trace recorder. Pure observation — toggling these never
  /// changes RNG draws, event schedules or any float the run computes, so
  /// results stay bit-identical across settings (pinned in
  /// tests/obs/trace_determinism_test.cc).
  obs::ObservabilityConfig observability;
};

/// The one validated entry point for a scenario config: every driver
/// (mono, sharded, serving) accepts a SystemConfig through this check, and
/// sqlb::Config::Validate() folds it into the facade-level validation.
/// Returns InvalidArgument with an actionable message instead of the
/// scattered per-driver asserts it replaced.
Status ValidateSystemConfig(const SystemConfig& config);

/// Everything a run produces.
struct RunResult {
  std::string method_name;
  SimTime duration = 0.0;

  // Counters.
  std::uint64_t queries_issued = 0;
  std::uint64_t queries_completed = 0;
  std::uint64_t queries_infeasible = 0;  // no active provider remained
  /// Queries whose mediation died with a crashed shard and were issued
  /// again (each re-issue also increments queries_issued, so the failover
  /// accounting identity is exact:
  /// completed + infeasible + reissued == issued).
  std::uint64_t queries_reissued = 0;

  // Response time over completions of post-warmup queries, and over all.
  RunningStats response_time;
  RunningStats response_time_all;

  // Departures. Scheduled churn leaves are recorded here too, with reason
  // kChurn; scheduled joins only bump the counter below (`initial_providers`
  // excludes held-out joiners).
  std::vector<DepartureEvent> departures;
  DepartureTally tally;
  std::uint64_t provider_joins = 0;
  std::size_t initial_providers = 0;
  std::size_t initial_consumers = 0;
  std::size_t remaining_providers = 0;
  std::size_t remaining_consumers = 0;

  // Time series keyed as documented on MediationSystem::kSeries* constants.
  des::SeriesSet series;

  /// Run-level metrics snapshot (obs/): per-lane registries folded in fixed
  /// lane order at the end of the run. Counters here are the source of
  /// truth for the bench counters mirrored into ShardedRunResult.
  obs::MetricsRegistry metrics;
  /// Trace spans drained from the flight recorder, sorted by
  /// (start, lane, seq); empty unless SystemConfig::observability.trace.
  std::vector<obs::TraceSpan> trace_spans;
  /// Spans lost to per-lane ring overflow (0 = trace_spans is complete).
  std::uint64_t trace_spans_dropped = 0;

  /// Percentage (0-100) of providers that departed.
  double ProviderDeparturePercent() const;
  /// Percentage (0-100) of consumers that departed.
  double ConsumerDeparturePercent() const;
  /// q-quantile of the post-warmup response-time histogram
  /// ("rt.response_seconds"); 0 when histograms were disabled or nothing
  /// completed. Complements the exact mean in `response_time`.
  double ResponseTimeQuantile(double q) const;
};

/// Per-shard accumulator for the RunResult sinks a mediation pipeline
/// touches from inside an epoch-parallel lane (completion counters,
/// response-time statistics, the sliding response window, infeasibility
/// counts). Lanes append locally — no locks, no shared cache lines — and
/// MergeEffectLogs folds every lane's entries into the real sinks at epoch
/// barriers, ordered by (time, shard, seq), so the merged statistics are
/// bit-identical to a serial run that applied them inline (distinct
/// event times across shards assumed; ties are measure-zero under the
/// continuous arrival/service distributions).
///
/// Entries within one log are naturally time-ordered because a lane
/// executes its events in time order.
class EffectLog {
 public:
  enum class Kind : std::uint8_t {
    /// A query's last selected provider finished: completion counter,
    /// response-time stats, response window.
    kCompletion,
    /// A query ended unallocated (no candidates / method refused):
    /// infeasibility counter.
    kInfeasible,
  };

  struct Entry {
    SimTime time = 0.0;
    double response_time = 0.0;  // kCompletion only
    Kind kind = Kind::kCompletion;
    bool post_warmup = false;  // kCompletion: counts toward the headline stat
  };

  void RecordCompletion(SimTime time, double response_time, bool post_warmup) {
    entries_.push_back(Entry{time, response_time, Kind::kCompletion,
                             post_warmup});
  }
  void RecordInfeasible(SimTime time) {
    entries_.push_back(Entry{time, 0.0, Kind::kInfeasible, false});
  }

  const std::vector<Entry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  void Clear() { entries_.clear(); }

 private:
  std::vector<Entry> entries_;
};

/// K-way merges the per-shard effect logs by (time, shard, seq) and applies
/// each entry to the shared sinks, then clears the logs. Runs on the
/// coordinating thread at epoch barriers, with every lane quiescent.
void MergeEffectLogs(std::vector<EffectLog>& logs, RunResult* result,
                     WindowedMean* response_window);

}  // namespace sqlb::runtime

#endif  // SQLB_RUNTIME_SCENARIO_H_
