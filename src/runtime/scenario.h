#ifndef SQLB_RUNTIME_SCENARIO_H_
#define SQLB_RUNTIME_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "des/time_series.h"
#include "runtime/consumer_agent.h"
#include "runtime/departures.h"
#include "runtime/provider_agent.h"
#include "workload/population.h"

/// \file
/// What a run needs and what a run produces, independent of who runs it:
/// the mono-mediator `runtime::MediationSystem` and the sharded
/// `shard::ShardedMediationSystem` both consume a SystemConfig and emit a
/// RunResult, which is what lets every experiment, bench and test compare
/// the two tiers on identical terms.

namespace sqlb::runtime {

/// Workload intensity over a run, as a fraction of total system capacity.
struct WorkloadSpec {
  enum class Kind { kConstant, kRamp };
  Kind kind = Kind::kConstant;
  /// Constant: the fixed fraction.
  double fraction = 0.8;
  /// Ramp: linear from ramp_start (t = 0) to ramp_end (t = duration). The
  /// paper's quality experiments use 0.3 -> 1.0 (Section 6.3.1).
  double ramp_start = 0.3;
  double ramp_end = 1.0;

  double FractionAt(SimTime t, SimTime duration) const;
  double MaxFraction() const;

  static WorkloadSpec Constant(double fraction);
  static WorkloadSpec Ramp(double start, double end);
};

/// Everything a run needs (Table 2 defaults).
struct SystemConfig {
  PopulationConfig population;
  WorkloadSpec workload = WorkloadSpec::Ramp(0.3, 1.0);
  /// Simulated run length in seconds (paper: 10,000).
  SimTime duration = 10000.0;
  /// Metric-probe sampling period.
  SimTime sample_interval = 50.0;
  /// Completions of queries issued before this time are excluded from the
  /// headline response-time statistic (steady-state measurement).
  SimTime stats_warmup = 500.0;
  /// q.n for every generated query (paper: 1).
  std::uint32_t query_n = 1;

  ConsumerAgentConfig consumer;
  ProviderAgentConfig provider;
  DepartureConfig departures;  // all disabled = captive participants

  /// When true, consumers push completion feedback into the reputation
  /// registry (ignored by the paper's upsilon = 1 setup; used by the
  /// upsilon ablation and examples).
  bool reputation_feedback = false;

  std::uint64_t seed = 42;
  /// Collect time series (disable for micro-benchmarks).
  bool record_series = true;
};

/// Everything a run produces.
struct RunResult {
  std::string method_name;
  SimTime duration = 0.0;

  // Counters.
  std::uint64_t queries_issued = 0;
  std::uint64_t queries_completed = 0;
  std::uint64_t queries_infeasible = 0;  // no active provider remained

  // Response time over completions of post-warmup queries, and over all.
  RunningStats response_time;
  RunningStats response_time_all;

  // Departures.
  std::vector<DepartureEvent> departures;
  DepartureTally tally;
  std::size_t initial_providers = 0;
  std::size_t initial_consumers = 0;
  std::size_t remaining_providers = 0;
  std::size_t remaining_consumers = 0;

  // Time series keyed as documented on MediationSystem::kSeries* constants.
  des::SeriesSet series;

  /// Percentage (0-100) of providers that departed.
  double ProviderDeparturePercent() const;
  /// Percentage (0-100) of consumers that departed.
  double ConsumerDeparturePercent() const;
};

}  // namespace sqlb::runtime

#endif  // SQLB_RUNTIME_SCENARIO_H_
