#ifndef SQLB_RUNTIME_ASYNC_MEDIATOR_H_
#define SQLB_RUNTIME_ASYNC_MEDIATOR_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/allocation.h"
#include "matchmaking/matchmaker.h"
#include "model/query.h"
#include "msg/network.h"
#include "runtime/consumer_agent.h"
#include "runtime/provider_agent.h"
#include "runtime/reputation.h"
#include "workload/population.h"

/// \file
/// Algorithm 1 over the message substrate, line by line:
///
///   line 2   fork ask for q.c's intentions        -> kConsumerIntentionReq
///   lines 3-4 fork ask each p in P_q its intention -> kProviderIntentionReq
///   line 5   waituntil CI and PI computed or timeout
///   lines 6-8 score and rank (the pluggable AllocationMethod)
///   lines 9-10 allocate to the q.n best, inform everyone of the result
///
/// Participants that do not answer before the timeout are treated as
/// indifferent (intention 0, Section 2's neutral value). Selected providers
/// enqueue the work and send the response to the consumer when done.

namespace sqlb::runtime {

/// Protocol message kinds carried over msg::Network.
enum class MediationMessageKind : std::uint32_t {
  kSubmitQuery = 1,           // consumer -> mediator   (payload: Query)
  kConsumerIntentionReq = 2,  // mediator -> consumer   (ConsumerIntentionReq)
  kConsumerIntentionRep = 3,  // consumer -> mediator   (ConsumerIntentionRep)
  kProviderIntentionReq = 4,  // mediator -> provider   (ProviderIntentionReq)
  kProviderIntentionRep = 5,  // provider -> mediator   (ProviderIntentionRep)
  kGrant = 6,                 // mediator -> provider   (Query)
  kMediationResult = 7,       // mediator -> provider   (MediationResult)
  kAllocationNotice = 8,      // mediator -> consumer   (AllocationNotice)
  kQueryResponse = 9,         // provider -> consumer   (QueryResponse)
};

struct ConsumerIntentionReq {
  Query query;
  std::vector<ProviderId> candidates;
};
struct ConsumerIntentionRep {
  QueryId query_id = kInvalidQueryId;
  std::vector<double> intentions;  // aligned with the request's candidates
  double satisfaction = 0.5;       // mediator-visible, for Eq. 6
};
struct ProviderIntentionReq {
  Query query;
};
struct ProviderIntentionRep {
  QueryId query_id = kInvalidQueryId;
  ProviderId provider;
  double intention = 0.0;
  double satisfaction = 0.5;
  double utilization = 0.0;
  double capacity = 1.0;
  double backlog_seconds = 0.0;
  double bid_price = 0.0;
  double estimated_delay = 0.0;
};
struct MediationResult {
  QueryId query_id = kInvalidQueryId;
  bool selected = false;
  double shown_intention = 0.0;
};
struct AllocationNotice {
  QueryId query_id = kInvalidQueryId;
  std::vector<ProviderId> candidates;
  std::vector<double> consumer_intentions;  // echo of the consumer's CI
  std::vector<ProviderId> selected;
};
struct QueryResponse {
  Query query;
  ProviderId performer;
};

/// Consumer node: answers intention requests from its preferences (via the
/// population matrix and the reputation registry) and tracks its
/// characterization window.
class AsyncConsumerNode final : public msg::Node {
 public:
  AsyncConsumerNode(ConsumerId id, const ConsumerAgentConfig& config,
                    const Population* population,
                    const ReputationRegistry* reputation);

  void OnMessage(msg::Network& network, const msg::Message& message) override;

  /// Issues a query through the mediator.
  void Submit(msg::Network& network, NodeId mediator, const Query& query);

  ConsumerAgent& agent() { return agent_; }
  NodeId address() const { return address_; }
  void set_address(NodeId address) { address_ = address; }

  std::uint64_t responses_received() const { return responses_; }

 private:
  ConsumerAgent agent_;
  const Population* population_;
  const ReputationRegistry* reputation_;
  NodeId address_;
  std::uint64_t responses_ = 0;
};

/// Provider node: answers intention requests (Definition 8 at current load)
/// and serves granted queries, replying to the consumer on completion.
class AsyncProviderNode final : public msg::Node {
 public:
  AsyncProviderNode(const ProviderProfile& profile,
                    const ProviderAgentConfig& config,
                    const Population* population);

  void OnMessage(msg::Network& network, const msg::Message& message) override;

  ProviderAgent& agent() { return agent_; }
  NodeId address() const { return address_; }
  void set_address(NodeId address) { address_ = address; }
  /// The mediator tells providers where to send responses.
  void SetConsumerDirectory(
      const std::unordered_map<std::uint32_t, NodeId>* consumers) {
    consumer_addresses_ = consumers;
  }

  /// When set (tests), the node ignores intention requests, exercising the
  /// mediator's timeout path.
  void set_mute(bool mute) { mute_ = mute; }

 private:
  ProviderAgent agent_;
  const Population* population_;
  NodeId address_;
  const std::unordered_map<std::uint32_t, NodeId>* consumer_addresses_ =
      nullptr;
  bool mute_ = false;
};

struct AsyncMediatorConfig {
  /// Line 5's timeout: how long the mediator waits for intention replies
  /// before scoring with whatever arrived (missing values = indifferent 0).
  SimTime intention_timeout = 0.25;
};

/// The mediator node.
class AsyncMediator final : public msg::Node {
 public:
  AsyncMediator(AsyncMediatorConfig config, AllocationMethod* method,
                Matchmaker* matchmaker);

  void OnMessage(msg::Network& network, const msg::Message& message) override;

  NodeId address() const { return address_; }
  void set_address(NodeId address) { address_ = address; }

  /// Provider/consumer address books (mediator-side registry).
  void RegisterProvider(ProviderId id, NodeId address);
  void RegisterConsumer(ConsumerId id, NodeId address);
  void UnregisterProvider(ProviderId id);

  std::uint64_t mediations_started() const { return started_; }
  std::uint64_t mediations_completed() const { return completed_; }
  std::uint64_t timeouts() const { return timeouts_; }

  const std::unordered_map<std::uint32_t, NodeId>& consumer_directory()
      const {
    return consumer_addresses_;
  }

 private:
  struct PendingMediation {
    Query query;
    NodeId consumer_node;
    std::vector<ProviderId> candidates;
    std::vector<double> consumer_intentions;   // defaults: 0 (indifferent)
    std::vector<ProviderIntentionRep> provider_replies;  // aligned
    std::vector<bool> provider_answered;
    bool consumer_answered = false;
    double consumer_satisfaction = 0.5;
    std::size_t outstanding = 0;  // replies still awaited
    des::EventId timeout_event = 0;
  };

  void StartMediation(msg::Network& network, const msg::Message& message);
  void OnConsumerReply(msg::Network& network, const msg::Message& message);
  void OnProviderReply(msg::Network& network, const msg::Message& message);
  void FinishMediation(msg::Network& network, std::uint64_t mediation_id,
                       bool timed_out);

  AsyncMediatorConfig config_;
  AllocationMethod* method_;
  Matchmaker* matchmaker_;
  NodeId address_;
  std::unordered_map<std::uint32_t, NodeId> provider_addresses_;
  std::unordered_map<std::uint32_t, NodeId> consumer_addresses_;
  std::unordered_map<std::uint64_t, PendingMediation> pending_;
  std::uint64_t next_mediation_ = 1;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t timeouts_ = 0;
};

}  // namespace sqlb::runtime

#endif  // SQLB_RUNTIME_ASYNC_MEDIATOR_H_
