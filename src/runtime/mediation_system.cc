#include "runtime/mediation_system.h"

#include "common/status.h"

namespace sqlb::runtime {

MediationSystem::MediationSystem(const SystemConfig& config,
                                 AllocationMethod* method)
    : engine_(config), method_(method) {
  SQLB_CHECK(method_ != nullptr, "mediation system needs a method");

  // Every provider except the scheduled joiners, which enter on churn.
  std::vector<std::uint32_t> members;
  members.reserve(engine_.providers().size());
  for (const ProviderAgent& provider : engine_.providers()) {
    if (engine_.held_out()[provider.id().index()]) continue;
    members.push_back(provider.id().index());
  }
  engine_.SetMethodName(method_->name());
  MediationCore::Shared shared = engine_.CoreSharedState();
  // The mono core is shard lane 0 of the engine's flight recorder.
  shared.trace = engine_.recorder().trace_lane(0);
  shared.metrics = engine_.recorder().hot_metrics(0);
  core_.emplace(shared, method_, std::move(members));
}

ChurnOutcome MediationSystem::OnProviderChurn(des::Simulator& sim,
                                              const ProviderChurnEvent& event) {
  if (event.join) {
    if (core_->IsMember(event.provider_index)) return ChurnOutcome::kNoOp;
    // A single core cannot mis-place a draining provider, but the drain
    // rule must match the sharded tier's exactly or the M = 1 parity pin
    // would see joins at different times.
    if (!engine_.providers()[event.provider_index].Idle()) {
      return ChurnOutcome::kDeferred;
    }
    core_->AdmitMember(event.provider_index, sim.Now());
    return ChurnOutcome::kApplied;
  }
  return core_->DepartMemberForChurn(event.provider_index, sim.Now())
             ? ChurnOutcome::kApplied
             : ChurnOutcome::kNoOp;
}

const ProviderAgent& MediationSystem::provider_agent(ProviderId id) const {
  SQLB_CHECK(id.index() < engine_.providers().size(), "unknown provider");
  return engine_.providers()[id.index()];
}

const ConsumerAgent& MediationSystem::consumer_agent(ConsumerId id) const {
  SQLB_CHECK(id.index() < engine_.consumers().size(), "unknown consumer");
  return engine_.consumers()[id.index()];
}

RunResult MediationSystem::Run() { return engine_.Run(*this); }

void MediationSystem::OnQueryArrival(des::Simulator& sim,
                                     const Query& query) {
  const MediationCore::Outcome outcome = core_->Allocate(sim, query);
  if (outcome != MediationCore::Outcome::kAllocated) {
    ++engine_.result().queries_infeasible;
    if (obs::TraceLane* lane = engine_.recorder().trace_lane(0);
        lane != nullptr && lane->SamplesQuery(query.id)) {
      lane->RecordInstant(obs::SpanKind::kReject, sim.Now(), query.id,
                          static_cast<double>(outcome));
    }
  }
}

void MediationSystem::RunProviderDepartureChecks(SimTime now,
                                                 double optimal_ut) {
  core_->RunProviderDepartureChecks(now, optimal_ut);
}

void MediationSystem::VisitActiveProviders(
    const std::function<void(ProviderAgent&)>& fn) {
  std::vector<ProviderAgent>& providers = engine_.providers();
  for (std::uint32_t index : core_->active_providers()) {
    fn(providers[index]);
  }
}

std::size_t MediationSystem::ActiveProviderCount() const {
  return core_->active_provider_count();
}

RunResult RunScenario(const SystemConfig& config, AllocationMethod* method) {
  MediationSystem system(config, method);
  return system.Run();
}

}  // namespace sqlb::runtime
