#include "runtime/mediation_system.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/status.h"
#include "model/characterization.h"

namespace sqlb::runtime {

double WorkloadSpec::FractionAt(SimTime t, SimTime duration) const {
  switch (kind) {
    case Kind::kConstant:
      return fraction;
    case Kind::kRamp: {
      if (t <= 0.0) return ramp_start;
      if (t >= duration) return ramp_end;
      return Lerp(ramp_start, ramp_end, t / duration);
    }
  }
  return fraction;
}

double WorkloadSpec::MaxFraction() const {
  switch (kind) {
    case Kind::kConstant:
      return fraction;
    case Kind::kRamp:
      return std::max(ramp_start, ramp_end);
  }
  return fraction;
}

WorkloadSpec WorkloadSpec::Constant(double fraction) {
  WorkloadSpec spec;
  spec.kind = Kind::kConstant;
  spec.fraction = fraction;
  return spec;
}

WorkloadSpec WorkloadSpec::Ramp(double start, double end) {
  WorkloadSpec spec;
  spec.kind = Kind::kRamp;
  spec.ramp_start = start;
  spec.ramp_end = end;
  return spec;
}

double RunResult::ProviderDeparturePercent() const {
  if (initial_providers == 0) return 0.0;
  return 100.0 * static_cast<double>(tally.providers_total()) /
         static_cast<double>(initial_providers);
}

double RunResult::ConsumerDeparturePercent() const {
  if (initial_consumers == 0) return 0.0;
  return 100.0 * static_cast<double>(tally.consumers_total()) /
         static_cast<double>(initial_consumers);
}

MediationSystem::MediationSystem(const SystemConfig& config,
                                 AllocationMethod* method)
    : config_(config),
      method_(method),
      population_(config.population, config.seed),
      rng_(config.seed ^ 0x5e5703a7ULL),
      query_class_rng_(rng_.Fork(11)),
      consumer_pick_rng_(rng_.Fork(12)),
      reputation_(config.population.num_providers, 0.0, 0.1),
      response_window_(500) {
  SQLB_CHECK(method_ != nullptr, "mediation system needs a method");
  SQLB_CHECK(config.duration > 0.0, "run duration must be positive");
  SQLB_CHECK(config.query_n >= 1, "q.n must be >= 1");

  providers_.reserve(population_.num_providers());
  for (const ProviderProfile& profile : population_.providers()) {
    providers_.emplace_back(profile, config_.provider);
    matchmaker_.Register(profile.id, Capability{});
    active_providers_.push_back(profile.id.index());
  }
  consumers_.reserve(population_.num_consumers());
  for (std::size_t c = 0; c < population_.num_consumers(); ++c) {
    consumers_.emplace_back(ConsumerId(static_cast<std::uint32_t>(c)),
                            config_.consumer);
    active_consumers_.push_back(static_cast<std::uint32_t>(c));
  }

  result_.method_name = method_->name();
  result_.duration = config_.duration;
  result_.initial_providers = providers_.size();
  result_.initial_consumers = consumers_.size();
}

const ProviderAgent& MediationSystem::provider_agent(ProviderId id) const {
  SQLB_CHECK(id.index() < providers_.size(), "unknown provider");
  return providers_[id.index()];
}

const ConsumerAgent& MediationSystem::consumer_agent(ConsumerId id) const {
  SQLB_CHECK(id.index() < consumers_.size(), "unknown consumer");
  return consumers_[id.index()];
}

double MediationSystem::ArrivalRateAt(SimTime t) const {
  // Nominal rate scaled by the surviving consumer share: fewer consumers
  // issue fewer queries (Section 6.3.2's remark on consumer departures).
  const double fraction = config_.workload.FractionAt(t, config_.duration);
  const double nominal = fraction * population_.total_capacity() /
                         population_.mean_query_units();
  const double consumer_share =
      static_cast<double>(active_consumers_.size()) /
      static_cast<double>(result_.initial_consumers);
  return nominal * consumer_share;
}

RunResult MediationSystem::Run() {
  SQLB_CHECK(!ran_, "MediationSystem::Run may only be called once");
  ran_ = true;

  // Arrival process over the whole run.
  const double max_rate = config_.workload.MaxFraction() *
                          population_.total_capacity() /
                          population_.mean_query_units();
  des::PoissonArrivalProcess arrivals(
      [this](SimTime t) { return ArrivalRateAt(t); }, max_rate,
      rng_.Fork(13));
  arrivals.Start(sim_, 0.0, config_.duration,
                 [this](des::Simulator& sim) { OnArrival(sim); });

  // Metric probes.
  des::PeriodicTask probe;
  if (config_.record_series) {
    probe.Start(sim_, config_.sample_interval, config_.sample_interval,
                config_.duration,
                [this](des::Simulator& sim) { SampleMetrics(sim); });
  }

  // Departure checks.
  des::PeriodicTask departure_task;
  const DepartureConfig& dep = config_.departures;
  const bool departures_enabled =
      dep.consumers_may_leave || dep.provider_dissatisfaction ||
      dep.provider_starvation || dep.provider_overutilization;
  if (departures_enabled) {
    departure_task.Start(sim_, dep.grace_period, dep.check_interval,
                         config_.duration,
                         [this](des::Simulator& sim) {
                           RunDepartureChecks(sim);
                         });
  }

  sim_.RunUntil(config_.duration);
  // Drain in-flight service so every allocated query completes.
  sim_.RunAll();

  result_.remaining_providers = active_providers_.size();
  result_.remaining_consumers = active_consumers_.size();
  return std::move(result_);
}

void MediationSystem::OnArrival(des::Simulator& sim) {
  if (active_consumers_.empty()) return;
  const std::uint32_t consumer_index =
      active_consumers_[static_cast<std::size_t>(
          consumer_pick_rng_.NextBounded(active_consumers_.size()))];

  Query query;
  query.id = next_query_id_++;
  query.consumer = ConsumerId(consumer_index);
  query.n = config_.query_n;
  query.class_index = static_cast<std::uint32_t>(
      query_class_rng_.NextBounded(population_.num_query_classes()));
  query.units = population_.QueryUnits(query.class_index);
  query.issue_time = sim.Now();

  ++result_.queries_issued;
  AllocateOne(sim, query);
}

void MediationSystem::AllocateOne(des::Simulator& sim, const Query& query) {
  const std::vector<ProviderId> pq = matchmaker_.Match(query);
  if (pq.empty()) {
    ++result_.queries_infeasible;
    return;
  }

  ConsumerAgent& consumer = consumers_[query.consumer.index()];
  const SimTime now = sim.Now();

  // Lines 2-5 of Algorithm 1: gather the consumer's and the providers'
  // intentions (synchronously here; runtime/async_mediator.h exercises the
  // fork/waituntil/timeout version over the message substrate).
  scratch_request_.candidates.clear();
  scratch_consumer_pref_.clear();
  scratch_provider_pref_.clear();
  scratch_ci_.clear();
  scratch_request_.query = &query;
  scratch_request_.consumer_satisfaction = consumer.Satisfaction();

  for (ProviderId pid : pq) {
    ProviderAgent& agent = providers_[pid.index()];
    const double consumer_pref =
        population_.ConsumerPreference(query.consumer, pid);
    const double provider_pref =
        population_.ProviderPreference(pid, query.id);
    CandidateProvider candidate;
    candidate.id = pid;
    candidate.consumer_intention =
        consumer.ComputeIntention(consumer_pref, reputation_.Get(pid));
    candidate.provider_intention =
        agent.ComputeIntention(provider_pref, now);
    candidate.provider_satisfaction = agent.SatisfactionOnIntentions();
    candidate.utilization = agent.Utilization(now);
    candidate.capacity = agent.capacity();
    candidate.backlog_seconds = agent.BacklogSeconds();
    candidate.bid_price = agent.ComputeBidPrice(provider_pref);
    candidate.estimated_delay = agent.EstimateDelay(query.units);
    scratch_request_.candidates.push_back(candidate);
    scratch_consumer_pref_.push_back(consumer_pref);
    scratch_provider_pref_.push_back(provider_pref);
    scratch_ci_.push_back(candidate.consumer_intention);
  }

  // Lines 6-10: the method scores, ranks and selects.
  const AllocationDecision decision = method_->Allocate(scratch_request_);
  // A strict economic broker may select fewer (even zero) providers, but
  // never more than Algorithm 1's min(q.n, N).
  SQLB_CHECK(decision.selected.size() <= SelectionCount(scratch_request_),
             "allocation produced more selections than min(q.n, N)");

  // Inform every provider of the mediation result (Section 5.4): selected
  // providers record a performed query; the rest record a proposal only.
  std::vector<bool> selected_mask(scratch_request_.candidates.size(), false);
  for (std::size_t idx : decision.selected) {
    SQLB_CHECK(idx < selected_mask.size(), "selection index out of range");
    SQLB_CHECK(!selected_mask[idx], "provider selected twice for one query");
    selected_mask[idx] = true;
  }
  for (std::size_t i = 0; i < scratch_request_.candidates.size(); ++i) {
    ProviderAgent& agent =
        providers_[scratch_request_.candidates[i].id.index()];
    agent.OnProposed(scratch_request_.candidates[i].provider_intention,
                     scratch_provider_pref_[i], selected_mask[i]);
  }

  // Consumer characterization: Eq. 1 over P_q, Eq. 2 over the selection.
  const double adequation = QueryAdequation(scratch_ci_);
  scratch_selected_ci_.clear();
  for (std::size_t idx : decision.selected) {
    scratch_selected_ci_.push_back(scratch_ci_[idx]);
  }
  const double satisfaction =
      QuerySatisfaction(scratch_selected_ci_, query.n);
  consumer.OnAllocated(adequation, satisfaction);

  if (decision.selected.empty()) {
    // Strict economic broker may leave a query untreated.
    ++result_.queries_infeasible;
    return;
  }

  // Dispatch to the selected providers; the consumer's response arrives
  // when the last of them completes.
  pending_.emplace(query.id,
                   PendingResponse{query.issue_time,
                                   static_cast<std::uint32_t>(
                                       decision.selected.size())});
  for (std::size_t idx : decision.selected) {
    ProviderAgent& agent =
        providers_[scratch_request_.candidates[idx].id.index()];
    agent.Enqueue(sim, query,
                  [this](const Query& q, ProviderId performer, SimTime t) {
                    OnQueryCompleted(q, performer, t);
                  });
  }
}

void MediationSystem::OnQueryCompleted(const Query& query,
                                       ProviderId performer,
                                       SimTime completion_time) {
  if (config_.reputation_feedback) {
    // Satisfaction-of-delivery signal: a response within twice the
    // performer's own service time is good, long queueing is bad (used by
    // the upsilon ablation and examples; the paper's upsilon = 1 setup
    // ignores reputation entirely).
    const double service =
        query.units / providers_[performer.index()].capacity();
    const double this_response = completion_time - query.issue_time;
    const double feedback =
        Clamp(1.0 - (this_response - service) / std::max(service, 1e-9),
              -1.0, 1.0);
    reputation_.AddFeedback(performer, feedback);
  }

  auto it = pending_.find(query.id);
  SQLB_CHECK(it != pending_.end(), "completion for unknown query");
  if (--it->second.outstanding > 0) return;

  const double response_time = completion_time - it->second.issue_time;
  pending_.erase(it);
  ++result_.queries_completed;
  result_.response_time_all.Add(response_time);
  if (query.issue_time >= config_.stats_warmup) {
    result_.response_time.Add(response_time);
  }
  response_window_.Add(response_time);

  ConsumerAgent& consumer = consumers_[query.consumer.index()];
  consumer.OnResult(response_time);
}

void MediationSystem::SampleMetrics(des::Simulator& sim) {
  const SimTime now = sim.Now();
  des::SeriesSet& s = result_.series;

  std::vector<double> sat_int, sat_pref, adq_int, adq_pref;
  std::vector<double> allocsat_int, allocsat_pref, ut;
  sat_int.reserve(active_providers_.size());
  for (std::uint32_t index : active_providers_) {
    ProviderAgent& p = providers_[index];
    sat_int.push_back(p.SatisfactionOnIntentions());
    sat_pref.push_back(p.SatisfactionOnPreferences());
    adq_int.push_back(p.AdequationOnIntentions());
    adq_pref.push_back(p.AdequationOnPreferences());
    allocsat_int.push_back(p.window().AllocationSatisfactionValue(
        ProviderWindow::Channel::kIntention));
    allocsat_pref.push_back(p.window().AllocationSatisfactionValue(
        ProviderWindow::Channel::kPreference));
    ut.push_back(p.Utilization(now));
  }
  s.Add(kSeriesProvSatIntMean, now, Mean(sat_int));
  s.Add(kSeriesProvSatPrefMean, now, Mean(sat_pref));
  s.Add(kSeriesProvAdqIntMean, now, Mean(adq_int));
  s.Add(kSeriesProvAdqPrefMean, now, Mean(adq_pref));
  s.Add(kSeriesProvAllocSatIntMean, now, Mean(allocsat_int));
  s.Add(kSeriesProvAllocSatPrefMean, now, Mean(allocsat_pref));
  s.Add(kSeriesProvSatIntFair, now, JainFairness(sat_int));
  s.Add(kSeriesProvSatPrefFair, now, JainFairness(sat_pref));
  s.Add(kSeriesUtMean, now, Mean(ut));
  s.Add(kSeriesUtFair, now, JainFairness(ut));

  std::vector<double> csat, cadq, callocsat;
  csat.reserve(active_consumers_.size());
  for (std::uint32_t index : active_consumers_) {
    ConsumerAgent& c = consumers_[index];
    csat.push_back(c.Satisfaction());
    cadq.push_back(c.Adequation());
    callocsat.push_back(c.AllocationSatisfactionValue());
  }
  s.Add(kSeriesConsSatMean, now, Mean(csat));
  s.Add(kSeriesConsAdqMean, now, Mean(cadq));
  s.Add(kSeriesConsAllocSatMean, now, Mean(callocsat));
  s.Add(kSeriesConsSatFair, now, JainFairness(csat));

  s.Add(kSeriesResponseTime, now, response_window_.Mean());
  s.Add(kSeriesActiveProviders, now,
        static_cast<double>(active_providers_.size()));
  s.Add(kSeriesActiveConsumers, now,
        static_cast<double>(active_consumers_.size()));
  s.Add(kSeriesWorkloadFraction, now,
        config_.workload.FractionAt(now, config_.duration));
}

void MediationSystem::RunDepartureChecks(des::Simulator& sim) {
  const SimTime now = sim.Now();
  const DepartureConfig& dep = config_.departures;
  const double optimal_ut =
      config_.workload.FractionAt(now, config_.duration);

  // Providers: the paper's order — dissatisfaction, starvation,
  // overutilization; first matching cause wins. Both utilization rules
  // are judged on the chronic utilization — the average allocation rate
  // over capacity since the previous check — rather than the instantaneous
  // 60-second window: a provider missing one measurement window has not
  // starved, and a provider riding a short burst is not overutilized; a
  // provider receiving 2.2x its capacity for a whole assessment period is.
  if (units_at_last_check_.empty()) {
    units_at_last_check_.assign(providers_.size(), 0.0);
  }
  const SimTime chronic_span = now - last_check_time_;
  if (dep.provider_dissatisfaction || dep.provider_starvation ||
      dep.provider_overutilization) {
    for (std::size_t i = 0; i < active_providers_.size();) {
      ProviderAgent& p = providers_[active_providers_[i]];
      const double sat = p.SatisfactionOnPreferences();
      const double adq = p.AdequationOnPreferences();
      const double acute_ut = p.Utilization(now);
      const double chronic_ut =
          chronic_span > 0.0
              ? (p.total_allocated_units() -
                 units_at_last_check_[active_providers_[i]]) /
                    (p.capacity() * chronic_span)
              : acute_ut;
      DepartureReason reason{};
      bool leaves = false;
      if (dep.provider_dissatisfaction &&
          sat < adq - dep.provider_dissat_margin) {
        reason = DepartureReason::kDissatisfaction;
        leaves = true;
      } else if (dep.provider_starvation &&
                 chronic_ut < dep.starvation_fraction * optimal_ut) {
        reason = DepartureReason::kStarvation;
        leaves = true;
      } else if (dep.provider_overutilization &&
                 (chronic_ut >
                      dep.overutilization_fraction * optimal_ut ||
                  p.BacklogSeconds() >
                      dep.overutilization_backlog_patience)) {
        reason = DepartureReason::kOverutilization;
        leaves = true;
      }
      if (leaves) {
        DepartProvider(i, reason, now);  // swap-removes: do not advance i
      } else {
        ++i;
      }
    }
  }
  for (std::uint32_t index : active_providers_) {
    units_at_last_check_[index] = providers_[index].total_allocated_units();
  }
  last_check_time_ = now;

  if (dep.consumers_may_leave) {
    if (consumer_violations_.empty()) {
      consumer_violations_.assign(consumers_.size(), 0);
    }
    for (std::size_t i = 0; i < active_consumers_.size();) {
      const std::uint32_t index = active_consumers_[i];
      ConsumerAgent& c = consumers_[index];
      if (c.Satisfaction() < c.Adequation() - dep.consumer_dissat_margin) {
        ++consumer_violations_[index];
      } else {
        consumer_violations_[index] = 0;
      }
      if (consumer_violations_[index] >=
          std::max<std::uint32_t>(1, dep.consumer_hysteresis_checks)) {
        DepartConsumer(i, now);
      } else {
        ++i;
      }
    }
  }
}

void MediationSystem::DepartProvider(std::size_t index,
                                     DepartureReason reason, SimTime now) {
  const std::uint32_t provider_index = active_providers_[index];
  ProviderAgent& agent = providers_[provider_index];
  agent.Depart();
  matchmaker_.Unregister(agent.id());

  DepartureEvent event;
  event.time = now;
  event.is_provider = true;
  event.reason = reason;
  event.participant_index = provider_index;
  event.capacity_class = agent.profile().capacity_class;
  event.interest_class = agent.profile().interest_class;
  event.adaptation_class = agent.profile().adaptation_class;
  result_.departures.push_back(event);
  result_.tally.Add(event);

  active_providers_[index] = active_providers_.back();
  active_providers_.pop_back();
}

void MediationSystem::DepartConsumer(std::size_t index, SimTime now) {
  const std::uint32_t consumer_index = active_consumers_[index];
  consumers_[consumer_index].Depart();

  DepartureEvent event;
  event.time = now;
  event.is_provider = false;
  event.reason = DepartureReason::kDissatisfaction;
  event.participant_index = consumer_index;
  result_.departures.push_back(event);
  result_.tally.Add(event);

  active_consumers_[index] = active_consumers_.back();
  active_consumers_.pop_back();
}

RunResult RunScenario(const SystemConfig& config, AllocationMethod* method) {
  MediationSystem system(config, method);
  return system.Run();
}

}  // namespace sqlb::runtime
