#include "runtime/mediation_system.h"

#include <string>

#include "common/status.h"

namespace sqlb::runtime {

MediationSystem::MediationSystem(const SystemConfig& config,
                                 AllocationMethod* method)
    : engine_(config), method_(method) {
  SQLB_CHECK(method_ != nullptr, "mediation system needs a method");

  // Every provider except the scheduled joiners, which enter on churn.
  std::vector<std::uint32_t> members;
  members.reserve(engine_.providers().size());
  for (const ProviderAgent& provider : engine_.providers()) {
    if (engine_.held_out()[provider.id().index()]) continue;
    members.push_back(provider.id().index());
  }
  engine_.SetMethodName(method_->name());
  MediationCore::Shared shared = engine_.CoreSharedState();
  // The mono core is shard lane 0 of the engine's flight recorder.
  shared.trace = engine_.recorder().trace_lane(0);
  shared.metrics = engine_.recorder().hot_metrics(0);
  core_.emplace(shared, method_, std::move(members));

  // Failover accounting on the coordinator lane, under the sharded tier's
  // metric names — the M = 1 parity pins compare merged registries.
  obs::FlightRecorder& recorder = engine_.recorder();
  const std::size_t coord = recorder.coordinator_lane();
  obs::MetricsRegistry& coord_registry = recorder.registry(coord);
  shard_crashes_counter_ =
      &coord_registry.GetCounter(obs::kMetricShardCrashes);
  reissued_counter_ = &coord_registry.GetCounter(obs::kMetricReissuedQueries);
  for (std::size_t r = 0; r < kNumReissueReasons; ++r) {
    reissued_reason_counters_[r] = &coord_registry.GetCounter(
        std::string(obs::kMetricReissuedPrefix) +
        ReissueReasonName(static_cast<ReissueReason>(r)));
  }
  restored_counter_ =
      &coord_registry.GetCounter(obs::kMetricRestoredProviders);
  orphaned_counter_ =
      &coord_registry.GetCounter(obs::kMetricOrphanedProviders);
  snapshots_counter_ = &coord_registry.GetCounter(obs::kMetricSnapshots);
  if (obs::MetricsRegistry* hot = recorder.hot_metrics(coord);
      hot != nullptr) {
    reissue_delay_hist_ = &hot->GetHistogram(obs::kMetricReissueDelay);
  }
  for (const ShardFaultEvent& event : config.shard_faults.events) {
    SQLB_CHECK(event.shard == 0, "mono system has only shard 0");
  }
}

void MediationSystem::StartAuxiliaryTasks(des::Simulator& sim) {
  if (engine_.config().shard_faults.empty()) return;
  const SimTime cadence = engine_.config().shard_faults.snapshot_interval;
  snapshot_task_.Start(sim, cadence, cadence, engine_.config().duration,
                       [this](des::Simulator& s) {
                         snapshot_ = core_->ExportSnapshot(s.Now());
                         snapshots_counter_->Inc();
                       });
}

void MediationSystem::Execute(des::Simulator& sim, SimTime duration) {
  Driver::Execute(sim, duration);
  // Every suppressed completion has fired by the end of the drain; the
  // engine merges the registries right after this returns.
  engine_.recorder()
      .registry(engine_.recorder().coordinator_lane())
      .GetCounter(obs::kMetricDroppedCompletions)
      .Inc(core_->dropped_completions());
}

void MediationSystem::OnShardFault(des::Simulator& sim,
                                   const ShardFaultEvent& event) {
  (void)event;  // always shard 0 (checked at construction)
  const SimTime now = sim.Now();
  shard_crashes_counter_->Inc();
  MediationCore::CrashReport report = core_->Crash();
  // Restart in place from the last snapshot. Same core, same kernel: even
  // members with in-flight service restore directly — their completions
  // from the previous incarnation drop against the bumped crash epoch.
  restored_counter_->Inc(core_->RestoreSnapshot(snapshot_));
  // Members the snapshot predates (admitted after it was taken) re-enter
  // fresh: chronic baseline at current totals, departure grace restarted.
  for (std::uint32_t p : report.members) {
    if (core_->IsMember(p)) continue;
    if (!engine_.providers()[p].active()) continue;
    MediationCore::ProviderHandoff fresh;
    fresh.provider_index = p;
    fresh.units_at_last_check =
        engine_.providers()[p].total_allocated_units();
    fresh.member_since = now;
    core_->ImportMember(fresh);
    orphaned_counter_->Inc();
  }
  // Re-issue what the crash lost, ascending query id. Each re-issue is a
  // fresh issue — completed + infeasible + reissued == issued stays exact.
  for (const Query& q : report.lost_queries) {
    ++engine_.result().queries_issued;
    ++engine_.result().queries_reissued;
    reissued_counter_->Inc();
    reissued_reason_counters_[static_cast<std::size_t>(
                                  ReissueReason::kInFlight)]
        ->Inc();
    if (reissue_delay_hist_ != nullptr) {
      reissue_delay_hist_->Record(now - q.issue_time);
    }
    OnQueryArrival(sim, q);
  }
}

ChurnOutcome MediationSystem::OnProviderChurn(des::Simulator& sim,
                                              const ProviderChurnEvent& event) {
  if (event.join) {
    if (core_->IsMember(event.provider_index)) return ChurnOutcome::kNoOp;
    // A single core cannot mis-place a draining provider, but the drain
    // rule must match the sharded tier's exactly or the M = 1 parity pin
    // would see joins at different times.
    if (!engine_.providers()[event.provider_index].Idle()) {
      return ChurnOutcome::kDeferred;
    }
    core_->AdmitMember(event.provider_index, sim.Now());
    return ChurnOutcome::kApplied;
  }
  return core_->DepartMemberForChurn(event.provider_index, sim.Now())
             ? ChurnOutcome::kApplied
             : ChurnOutcome::kNoOp;
}

const ProviderAgent& MediationSystem::provider_agent(ProviderId id) const {
  SQLB_CHECK(id.index() < engine_.providers().size(), "unknown provider");
  return engine_.providers()[id.index()];
}

const ConsumerAgent& MediationSystem::consumer_agent(ConsumerId id) const {
  SQLB_CHECK(id.index() < engine_.consumers().size(), "unknown consumer");
  return engine_.consumers()[id.index()];
}

RunResult MediationSystem::Run() { return engine_.Run(*this); }

void MediationSystem::OnQueryArrival(des::Simulator& sim,
                                     const Query& query) {
  const MediationCore::Outcome outcome = core_->Allocate(sim, query);
  if (outcome != MediationCore::Outcome::kAllocated) {
    ++engine_.result().queries_infeasible;
    if (obs::TraceLane* lane = engine_.recorder().trace_lane(0);
        lane != nullptr && lane->SamplesQuery(query.id)) {
      lane->RecordInstant(obs::SpanKind::kReject, sim.Now(), query.id,
                          static_cast<double>(outcome));
    }
  }
}

void MediationSystem::RunProviderDepartureChecks(SimTime now,
                                                 double optimal_ut) {
  core_->RunProviderDepartureChecks(now, optimal_ut);
}

void MediationSystem::VisitActiveProviders(
    const std::function<void(ProviderAgent&)>& fn) {
  std::vector<ProviderAgent>& providers = engine_.providers();
  for (std::uint32_t index : core_->active_providers()) {
    fn(providers[index]);
  }
}

std::size_t MediationSystem::ActiveProviderCount() const {
  return core_->active_provider_count();
}

RunResult RunScenario(const SystemConfig& config, AllocationMethod* method) {
  MediationSystem system(config, method);
  return system.Run();
}

}  // namespace sqlb::runtime
