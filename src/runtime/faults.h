#ifndef SQLB_RUNTIME_FAULTS_H_
#define SQLB_RUNTIME_FAULTS_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

/// \file
/// Mediator fault injection: scheduled shard kills, executed by the
/// ScenarioEngine at BarrierKind::kFailover barriers (every lane quiescent
/// and merged when the kill fires, so a crash is a well-defined cut of the
/// simulation state, not a race).
///
/// The fault model (see README "Fault model and recovery semantics"): a
/// killed shard loses everything it has not snapshotted — its in-flight
/// mediation decisions and its intake buffer — but its provider population
/// survives, because providers are autonomous participants, not mediator
/// state. Survivors adopt the dead shard's providers through the versioned
/// ring and restore their chronic baselines from the last crash-consistent
/// snapshot; queries lost in flight are re-issued with the availability
/// penalty charged to the response-time statistics. The accounting
/// invariant, pinned in tests and the chaos bench arm:
///
///   completed + infeasible + declared-reissued == issued, exactly,
///   under any kill schedule.

namespace sqlb::runtime {

/// Why a query had to be re-issued after a shard crash — the failover
/// analogue of DepartureReason.
enum class ReissueReason : std::uint8_t {
  /// The query was mediated and executing (or queued) on the dead shard's
  /// providers; the completion callback died with the shard.
  kInFlight = 0,
  /// The query was sitting in the dead shard's batch-intake buffer and had
  /// not been mediated yet.
  kIntake = 1,
};

inline constexpr std::size_t kNumReissueReasons = 2;

/// "in_flight", "intake".
const char* ReissueReasonName(ReissueReason reason);

/// One scheduled shard kill. The shard index is interpreted by the driver
/// that implements OnShardFault (the sharded tier's shard id; the mono
/// system treats every kill as a crash-and-restart of its single mediator).
struct ShardFaultEvent {
  SimTime time = 0.0;
  std::uint32_t shard = 0;
};

/// The scenario's fault script: every event fires at its time as a
/// kFailover barrier. Events need not be pre-sorted; the engine orders them
/// by (time, list position). Killing an already-dead shard is a no-op the
/// driver reports (ChurnOutcome::kNoOp-style), so random schedules may name
/// any shard.
struct FaultSchedule {
  std::vector<ShardFaultEvent> events;

  /// Snapshot cadence, in simulated seconds: how often each live shard
  /// exports a crash-consistent snapshot at an epoch barrier. Everything
  /// the shard did after its last snapshot is lost on a kill and must be
  /// re-issued or re-admitted fresh.
  SimTime snapshot_interval = 50.0;

  /// Retry cadence for adopting a dead shard's non-idle providers: a
  /// provider still draining in-flight completions on the dead lane is
  /// re-checked this often (at kFailover barriers) until idle, then
  /// imported by its new owner — the failover analogue of the handoff
  /// protocol's seal -> drain -> transfer rule.
  SimTime drain_retry_interval = 5.0;

  bool empty() const { return events.empty(); }

  /// A single kill of `shard` at `time`.
  static FaultSchedule KillAt(SimTime time, std::uint32_t shard);

  /// Random kills at mean rate `kills_per_1000s` per 1000 simulated
  /// seconds: exponential gaps starting after `start`, each naming a
  /// uniformly drawn shard in [0, num_shards), until `end`. Pure data —
  /// the schedule is generated up front from `seed`, so the same seed
  /// always produces the same kill times regardless of how the run
  /// executes. The driver skips kills naming an already-dead shard and
  /// refuses to kill the last live one, so a random schedule can never
  /// extinguish the tier.
  static FaultSchedule RandomKills(SimTime start, SimTime end,
                                   double kills_per_1000s,
                                   std::uint32_t num_shards,
                                   std::uint64_t seed);

  /// Appends `other`'s events after this schedule's (cadence fields keep
  /// this schedule's values).
  FaultSchedule& Append(const FaultSchedule& other);
};

}  // namespace sqlb::runtime

#endif  // SQLB_RUNTIME_FAULTS_H_
