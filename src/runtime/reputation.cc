#include "runtime/reputation.h"

#include "common/math_util.h"
#include "common/status.h"

namespace sqlb::runtime {

ReputationRegistry::ReputationRegistry(std::size_t num_providers,
                                       double initial, double smoothing)
    : reputation_(num_providers, Clamp(initial, -1.0, 1.0)),
      smoothing_(smoothing) {
  SQLB_CHECK(smoothing > 0.0 && smoothing <= 1.0,
             "reputation smoothing must lie in (0, 1]");
}

double ReputationRegistry::Get(ProviderId p) const {
  SQLB_CHECK(p.index() < reputation_.size(), "unknown provider");
  return reputation_[p.index()];
}

void ReputationRegistry::AddFeedback(ProviderId p, double feedback) {
  SQLB_CHECK(p.index() < reputation_.size(), "unknown provider");
  const double f = Clamp(feedback, -1.0, 1.0);
  reputation_[p.index()] =
      (1.0 - smoothing_) * reputation_[p.index()] + smoothing_ * f;
}

void ReputationRegistry::Set(ProviderId p, double reputation) {
  SQLB_CHECK(p.index() < reputation_.size(), "unknown provider");
  reputation_[p.index()] = Clamp(reputation, -1.0, 1.0);
}

}  // namespace sqlb::runtime
