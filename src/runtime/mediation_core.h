#ifndef SQLB_RUNTIME_MEDIATION_CORE_H_
#define SQLB_RUNTIME_MEDIATION_CORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "core/allocation.h"
#include "des/seqlock.h"
#include "des/simulator.h"
#include "matchmaking/matchmaker.h"
#include "mem/agent_arena.h"
#include "model/query.h"
#include "runtime/consumer_agent.h"
#include "runtime/provider_agent.h"
#include "runtime/reputation.h"
#include "runtime/scenario.h"
#include "workload/population.h"

/// \file
/// The shard-agnostic heart of the mediation tier: one Algorithm-1 pipeline
/// (matchmaking -> intention gathering -> scoring/selection by the pluggable
/// AllocationMethod -> result dispatch -> completion accounting) plus the
/// Section 6.3.2 provider departure rules, all scoped to a *subset* of the
/// provider population.
///
/// `runtime::MediationSystem` runs exactly one core over every provider (the
/// paper's mono-mediator, Section 6.1); `shard::ShardedMediationSystem` runs
/// M cores over a consistent-hash partition of the providers. Both share
/// this code path, which is what makes the M = 1 parity guarantee hold
/// bit-for-bit rather than approximately.

namespace sqlb::runtime {

class DecisionLog;

/// One per-shard Algorithm-1 pipeline over a member subset of the provider
/// population. Participant vectors are owned by the enclosing system and
/// indexed globally; the core only ever touches its member providers (and
/// the consumers that issue queries to it).
///
/// The gather step (lines 2-5) is event-proportional, not query-
/// proportional: each member's query-independent characterization
/// (utilization, window satisfactions, backlog, the Definition-8 evaluator
/// with its state pow factors hoisted) lives in a persistent per-member
/// cache stamped with the provider agent's event revisions
/// (runtime/provider_agent.h), and a field is recomputed only when the
/// state transition that could change it actually happened — OnProposed
/// touching the performed subset, Enqueue/completion, utilization decay,
/// depart/rejoin. Refreshes run the exact computations (and windowed-sum
/// evictions) the uncached path would run at the same call sites, so a
/// cached run is bit-identical to a cache-disabled one
/// (SystemConfig::characterization_cache; pinned in
/// tests/shard/cache_parity_test.cc). Both Allocate and AllocateBatch feed
/// from this cache into struct-of-arrays candidate columns
/// (core/allocation.h) that the scoring kernels walk contiguously.
class MediationCore {
 public:
  /// Shared, system-owned state every core reads or sinks into. All
  /// pointers must outlive the core.
  struct Shared {
    const SystemConfig* config = nullptr;
    const Population* population = nullptr;
    std::vector<ProviderAgent>* providers = nullptr;
    std::vector<ConsumerAgent>* consumers = nullptr;
    ReputationRegistry* reputation = nullptr;
    /// Counter/departure/response-time sink (global across shards).
    RunResult* result = nullptr;
    /// Sliding response-time window behind the rt.window series.
    WindowedMean* response_window = nullptr;
    /// When non-null, the cross-shard sinks above (`result` counters and
    /// stats, `response_window`) are not written directly: completion and
    /// infeasibility effects are appended to this per-shard log instead,
    /// and the owning system merges every shard's log at epoch barriers in
    /// (time, shard, seq) order (MergeEffectLogs). This is what lets one
    /// core run on a worker thread while its siblings run on others.
    /// Consumer/provider agent state is still written directly — under the
    /// parallel mode's consumer-affine routing contract those writes are
    /// shard-private. Requires `config->reputation_feedback == false`
    /// (completion-time reputation writes would couple shards mid-epoch).
    EffectLog* effects = nullptr;
    /// This core's span recorder (the owning shard's lane of the flight
    /// recorder), or null when tracing is off. Single-writer: the core
    /// records spans for its own queries only, in both serial and parallel
    /// execution, so the lane's record sequence is mode-independent.
    obs::TraceLane* trace = nullptr;
    /// This core's hot-path histogram registry (the shard's lane registry),
    /// or null when histograms are off. Same single-writer discipline.
    obs::MetricsRegistry* metrics = nullptr;
    /// When non-null (relaxed-parity parallel execution), every lane-side
    /// consumer-agent access — intention gathering, allocation
    /// characterization, completion results — runs inside the consumer's
    /// sequence lock, so load-aware routing may mediate one consumer on
    /// several shards concurrently. Null under serial execution and under
    /// strict parity's consumer-affine routing, where the accesses are
    /// single-threaded by construction.
    des::SeqLockTable* consumer_locks = nullptr;
    /// This core's agent arena (the owning lane's pooled chunk source), or
    /// null when agent pooling is disabled. Members admitted, imported or
    /// restored onto this core are re-homed on it (SetArena); their
    /// already-resident chunks keep draining to their original pool.
    mem::AgentArena* arena = nullptr;
    /// When non-null, every mediation this core decides appends one record
    /// (query id, outcome, selected provider indices in selection order).
    /// This is the replay oracle's comparison stream: a wall-clock serving
    /// run (runtime/serving_mediator.h) and its DES replay each record into
    /// a log, and the two must be identical. Single-writer, like trace.
    DecisionLog* decisions = nullptr;
  };

  /// What one mediation attempt did, so the caller (mono system or shard
  /// router) decides between counting an infeasible query and re-routing.
  enum class Outcome {
    /// Dispatched to >= 1 provider; the response callback will fire.
    kAllocated,
    /// Matchmaking returned an empty P_q (every member provider departed).
    kNoCandidates,
    /// Saturation pre-check tripped (see Allocate); nothing was mutated.
    kSaturated,
    /// The method selected no provider (strict economic broker); providers
    /// and the consumer recorded the failed round.
    kUnallocated,
  };

  /// `member_providers` lists the global indices this core mediates over.
  /// The method is not owned and must outlive the core.
  MediationCore(const Shared& shared, AllocationMethod* method,
                std::vector<std::uint32_t> member_providers);

  /// Runs Algorithm 1 for `query` over this core's active providers.
  ///
  /// When `saturation_backlog_seconds` > 0 and every candidate's queued
  /// work exceeds that many seconds, returns kSaturated *before* gathering
  /// intentions — no window, characterization or queue state changes, so a
  /// router may retry the query on another shard as if it never arrived
  /// here. Pass 0 (the mono-mediator setting) to disable the pre-check.
  Outcome Allocate(des::Simulator& sim, const Query& query,
                   double saturation_backlog_seconds = 0.0);

  /// Runs Algorithm 1 once for a whole arrival burst: one matchmaking pass,
  /// one saturation pre-check, one provider characterization pass (a
  /// revalidation of the event-driven cache at the burst time), and one
  /// scoring pass over the burst (AllocationMethod::AllocateBatchColumns),
  /// instead of repeating all of it per query. Per-query state (consumer
  /// intentions, provider preferences, windows, dispatch) is still handled
  /// query by query, in burst order.
  ///
  /// Semantics: every query in the burst observes the provider state as of
  /// `sim.Now()` at the call — queries within one burst do not see each
  /// other's allocations, which is precisely the amortization (intention
  /// gathering happens once per burst, Section 4's "gather intentions" step
  /// amortized over the burst). A burst of one is bit-for-bit identical to
  /// Allocate(); the saturation pre-check bounces the burst as a whole and
  /// is side-effect free, exactly like the single-query check.
  ///
  /// `outcomes` is resized to `queries.size()` with one Outcome per query.
  void AllocateBatch(des::Simulator& sim, const std::vector<Query>& queries,
                     double saturation_backlog_seconds,
                     std::vector<Outcome>* outcomes);

  /// The paper's provider-side departure rules (dissatisfaction,
  /// starvation, overutilization — first match wins) over this core's
  /// active members. `optimal_ut` is the nominal workload fraction at the
  /// check time. Members admitted less than `grace_period` ago are exempt —
  /// a provider that just joined has no evidence to be judged on, exactly
  /// like the system-wide grace at t = 0.
  void RunProviderDepartureChecks(SimTime now, double optimal_ut);

  // --- Membership lifecycle (provider churn and shard re-partitioning) -----

  /// Everything a member provider carries across a shard handoff beyond the
  /// globally-owned agent state: the chronic-utilization baseline of the
  /// starvation rule and the admission time of the departure grace.
  struct ProviderHandoff {
    std::uint32_t provider_index = 0;
    double units_at_last_check = 0.0;
    SimTime member_since = 0.0;
  };

  /// Admits `provider_index` as a new member at `now` (a scheduled join, or
  /// a departed provider returning): reactivates the agent, registers it
  /// for matchmaking, and starts its chronic-utilization baseline at the
  /// agent's current totals. The caller must ensure it is not a member of
  /// any core already.
  void AdmitMember(std::uint32_t provider_index, SimTime now);

  /// Stops matching `provider_index` (no new work) without removing its
  /// membership — the first half of a handoff: the provider drains its
  /// queue here while departure checks and metrics still count it.
  void SealMember(std::uint32_t provider_index);
  /// Reverts SealMember (the ring flapped back before the drain finished).
  void UnsealMember(std::uint32_t provider_index);

  /// Removes a drained member and returns its handoff state. The provider
  /// must be a member and Idle() — no pending completion events may be left
  /// behind on this core's simulator.
  ProviderHandoff ExportMember(std::uint32_t provider_index);
  /// Installs a handed-off member: registers matchmaking and restores the
  /// chronic baseline and admission time ExportMember captured.
  void ImportMember(const ProviderHandoff& handoff);

  /// Force-departs an active member at `now` with reason kChurn (a
  /// scheduled leave). Returns false when `provider_index` is not a member
  /// (it already departed by the Section 6.3.2 rules — the scheduled leave
  /// is then a no-op).
  bool DepartMemberForChurn(std::uint32_t provider_index, SimTime now);

  bool IsMember(std::uint32_t provider_index) const;

  // --- Crash, snapshot, and failover recovery ------------------------------

  /// A crash-consistent image of this core's mediator-owned state, taken at
  /// an epoch barrier (every lane quiescent, so the cut is well-defined).
  /// Provider windows, utilization history and queue state are *not* here:
  /// agents are autonomous participants owned by the system, not mediator
  /// state, so they survive a mediator crash by construction — what dies
  /// with the mediator is its membership bookkeeping (who it mediates over,
  /// chronic baselines, admission times) and its in-flight response
  /// tracking, which is exactly what this captures.
  struct CoreSnapshot {
    SimTime taken_at = 0.0;
    /// Member baselines as of the snapshot (the ExportMember payload),
    /// sorted by provider index.
    std::vector<ProviderHandoff> members;
    /// In-flight FIFO digest: how many responses were pending and an
    /// FNV-1a hash over their sorted query ids — a cheap diagnostic that a
    /// restored run's in-flight population matches expectations.
    std::size_t pending_count = 0;
    std::uint64_t pending_digest = 0;
  };

  /// Captures the snapshot at `now`. Pure read — never perturbs the run.
  CoreSnapshot ExportSnapshot(SimTime now) const;

  /// What a crash took down with the mediator.
  struct CrashReport {
    /// Member provider indices at crash time (ascending). Their agents are
    /// still alive — survivors must adopt them (from the last snapshot's
    /// baselines when present, fresh otherwise).
    std::vector<std::uint32_t> members;
    /// Queries dispatched but not yet completed, sorted by id: their
    /// completion callbacks die with this core and they must be re-issued
    /// (ReissueReason::kInFlight).
    std::vector<Query> lost_queries;
  };

  /// Kills this core: clears membership, matchmaking and in-flight
  /// tracking, and bumps the crash epoch so completion callbacks already
  /// scheduled on provider agents are dropped when they fire (counted in
  /// dropped_completions(); the agents still pop their queues, so they
  /// drain to Idle() on the dead lane and can be adopted). Call only at a
  /// kFailover barrier.
  CrashReport Crash();

  /// Re-installs a snapshot's members on this (crashed, empty) core — the
  /// restart path of a mediator that has no survivor to fail over to (the
  /// mono system, or the last live shard). Members whose agent departed
  /// between snapshot and crash are skipped. Returns the number restored.
  std::size_t RestoreSnapshot(const CoreSnapshot& snapshot);

  /// Completions dropped because their dispatching incarnation crashed.
  std::uint64_t dropped_completions() const { return dropped_completions_; }
  /// Times this core has crashed (the completion-suppression epoch).
  std::uint64_t crash_count() const { return crash_epoch_; }

  // --- Load and membership introspection ----------------------------------

  const std::vector<std::uint32_t>& active_providers() const {
    return active_providers_;
  }
  std::size_t active_provider_count() const {
    return active_providers_.size();
  }
  std::size_t initial_provider_count() const { return initial_members_; }

  /// Mean committed utilization over active members at `now` (the gossip
  /// load-report payload; > 1 under sustained overload).
  double MeanCommittedUtilization(SimTime now) const;
  /// Mean seconds of queued work over active members.
  double MeanBacklogSeconds() const;

  AllocationMethod* method() const { return method_; }
  std::uint64_t allocated_queries() const { return allocated_queries_; }
  std::uint64_t pending_responses() const { return pending_.size(); }

  // --- Event-driven characterization cache ---------------------------------

  /// Per-member provider snapshot: every query-independent field of the
  /// candidate gather, plus the Definition-8 evaluator with the
  /// provider-state pow factors hoisted.
  struct CandidateSnapshot {
    ProviderId id;
    double utilization = 0.0;
    double satisfaction_intentions = 0.5;
    double satisfaction_preferences = 0.5;
    double backlog_seconds = 0.0;
    double capacity = 1.0;
  };

  /// One member's cached characterization, stamped with the provider-agent
  /// revisions it was computed from. A field refreshes exactly when its
  /// stamp no longer matches (or, for the time-decaying utilization, when
  /// the agent's windowed sum would evict — the exact decay predicate), so
  /// every refresh recomputes precisely what the uncached path would have
  /// recomputed and the cached values stay bit-identical to recomputation.
  struct MemberCharacterization {
    /// Coarse validity: agent's characterization_revision at refresh. The
    /// hit path compares only this (plus the decay deadline below), so a
    /// hit costs one agent load and one cache-entry line.
    std::uint64_t char_revision = kNeverCharacterized;
    /// Oldest utilization-window event at refresh (+inf when none):
    /// `decay_front_time <= now - window` is exactly the agent's eviction
    /// predicate while char_revision holds, evaluated without touching the
    /// agent's deque.
    SimTime decay_front_time = 0.0;
    CandidateSnapshot snap;
    ProviderIntentionEvaluator evaluator;
    // Fine stamps: the refresh path recomputes only what actually moved.
    std::uint64_t load_revision = kNeverCharacterized;
    std::uint64_t utilization_revision = kNeverCharacterized;
    std::uint64_t satisfaction_revision = kNeverCharacterized;
  };

  /// Cache traffic counters (tests and the micro bench read these).
  struct CacheStats {
    std::uint64_t lookups = 0;
    std::uint64_t utilization_refreshes = 0;
    std::uint64_t backlog_refreshes = 0;
    std::uint64_t satisfaction_refreshes = 0;
    std::uint64_t evaluator_rebuilds = 0;
  };

 public:
  const CacheStats& cache_stats() const { return cache_stats_; }
  bool cache_enabled() const { return cache_enabled_; }

 private:
  static constexpr std::uint64_t kNeverCharacterized = ~0ULL;

  struct PendingResponse {
    /// The dispatched query itself, kept so a crash can re-issue exactly
    /// what was in flight (issue_time rides along inside).
    Query query;
    /// When the query was dispatched to its providers (the kExecute span's
    /// start; equals the mediation time).
    SimTime dispatch_time;
    std::uint32_t outstanding;
  };

  /// Returns `provider_index`'s characterization, valid as of `now`. The
  /// inline fast path is the steady-state hit (the coarse stamp matches
  /// and no utilization decay is due): two compares, no refresh. Misses
  /// fall through to RefreshCharacterization, which revalidates each
  /// snapshot field against the agent's fine event stamps and refreshes
  /// only the stale ones (all of them when the cache is disabled — the
  /// recompute-per-query twin).
  const MemberCharacterization& Characterize(std::uint32_t provider_index,
                                             SimTime now) {
    const ProviderAgent& agent = (*shared_.providers)[provider_index];
    const MemberCharacterization& mc = member_cache_[agent.core_slot()];
    if (cache_enabled_ &&
        mc.char_revision == agent.characterization_revision() &&
        !(mc.decay_front_time <= now - utilization_window_width_)) {
      return mc;
    }
    return RefreshCharacterization(provider_index, now);
  }
  const MemberCharacterization& RefreshCharacterization(
      std::uint32_t provider_index, SimTime now);

  void OnQueryCompleted(const Query& query, ProviderId performer,
                        SimTime completion_time);
  void DepartProvider(std::size_t index, DepartureReason reason, SimTime now);
  /// Enters the consumer's critical section when a lock table is wired
  /// (relaxed-parity lanes); a no-op guard otherwise.
  des::SeqLockTable::Guard LockConsumer(ConsumerId id) {
    return shared_.consumer_locks != nullptr
               ? shared_.consumer_locks->Acquire(id.index())
               : des::SeqLockTable::Guard();
  }
  /// Fills `columns`/`prefs` with the per-query candidate gather for
  /// `query` over `pq` at `now`, reading the query-independent fields from
  /// the characterization cache. The caller holds the consumer's lock.
  void GatherCandidates(const Query& query, const std::vector<ProviderId>& pq,
                        SimTime now, CandidateColumns* columns,
                        std::vector<double>* prefs);

  /// The post-decision half of Algorithm 1 (provider notification, consumer
  /// characterization, dispatch), shared by Allocate and AllocateBatch.
  /// `provider_prefs` is aligned with the candidate columns.
  Outcome ApplyDecision(des::Simulator& sim, const Query& query,
                        const CandidateColumns& columns,
                        const std::vector<double>& provider_prefs,
                        const AllocationDecision& decision);

  Shared shared_;
  AllocationMethod* method_;
  AcceptAllMatchmaker matchmaker_;
  bool cache_enabled_ = true;
  /// config->provider.utilization_window, hoisted for the decay check of
  /// the Characterize fast path.
  SimTime utilization_window_width_ = 60.0;
  /// The method's column mask, read once at construction: the gather loop
  /// materializes only the optional columns the method's scoring reads.
  CandidateColumnNeeds column_needs_;

  /// Global indices of still-active member providers (swap-removed on
  /// departure, mirroring the mono-mediator's active list).
  std::vector<std::uint32_t> active_providers_;
  std::size_t initial_members_ = 0;

  std::unordered_map<QueryId, PendingResponse> pending_;
  std::uint64_t allocated_queries_ = 0;

  /// Bumped by Crash(): completion callbacks capture the epoch they were
  /// dispatched under and drop themselves when it no longer matches —
  /// already-scheduled agent completions on a dead lane fire harmlessly
  /// instead of corrupting the successor incarnation's accounting.
  std::uint64_t crash_epoch_ = 0;
  std::uint64_t dropped_completions_ = 0;

  /// Assigns `provider_index` a dense member slot on this core (recycling
  /// freed slots LIFO — membership changes only happen at deterministic
  /// barriers, so the recycling order is part of the parity contract) and
  /// resets the slot's characterization stamps to never-characterized: a
  /// recycled slot must not serve the previous occupant's cache entry.
  std::uint32_t AllocMemberSlot(std::uint32_t provider_index);
  /// Returns the member's slot to the freelist and detaches the agent.
  void FreeMemberSlot(std::uint32_t provider_index);
  std::uint32_t MemberSlot(std::uint32_t provider_index) const {
    return (*shared_.providers)[provider_index].core_slot();
  }

  // Chronic-utilization bookkeeping for the starvation rule: allocated
  // units and timestamp at each member's previous departure check, indexed
  // by *member slot* (the agent's core_slot column), so a core over 1/M of
  // a million-provider population holds member-count state, not
  // population-count state. `member_since_` records when each member was
  // (last) admitted: 0 for initial members, the join/import time otherwise —
  // it bounds the chronic measurement span and grants joiners the departure
  // grace period.
  std::vector<double> units_at_last_check_;
  std::vector<SimTime> member_since_;
  std::vector<std::uint32_t> free_member_slots_;
  SimTime last_check_time_ = 0.0;

  /// The characterization cache, indexed by member slot (one entry per
  /// current member; slots recycle across membership changes with their
  /// stamps reset).
  std::vector<MemberCharacterization> member_cache_;
  CacheStats cache_stats_;

  // Hot-path histograms, hoisted from Shared::metrics at construction
  // (null when histograms are disabled — call sites pay one branch).
  obs::Histogram* rt_histogram_ = nullptr;
  obs::Histogram* candidates_histogram_ = nullptr;

  // Scratch buffers reused across allocations (the hot path). All of them
  // are pre-sized to the member-provider count at construction so the
  // first allocations do not pay growth reallocations.
  CandidateColumns scratch_columns_;
  std::vector<double> scratch_provider_pref_;
  std::vector<double> scratch_selected_ci_;
  std::vector<char> scratch_selected_mask_;

  // Burst scratch for AllocateBatch: one candidate-column/preference-row/
  // decision arena slot per burst query (slots are reused across bursts;
  // only burst sizes beyond the high-water mark allocate).
  std::vector<CandidateColumns> batch_columns_;
  std::vector<ColumnarRequest> batch_requests_;
  std::vector<std::vector<double>> batch_provider_prefs_;
  std::vector<AllocationDecision> batch_decisions_;
};

/// Ordered record of the allocation decisions a core (or a set of cores
/// sharing one log) made — the serving tier's replay-oracle stream: a
/// recorded serving run and its DES replay must produce identical logs
/// (runtime/serving_mediator.h, tests/runtime/serving_replay_test.cc).
///
/// ApplyDecision appends kAllocated/kUnallocated records in-core; bursts
/// that never reach it (empty candidate set -> kNoCandidates, saturation
/// bounce -> kSaturated) are appended by the driver at the call site, so
/// recorder and replayer — both driving AllocateBatch the same way — agree
/// on the full stream, not just the allocated subset.
class DecisionLog {
 public:
  struct Record {
    QueryId query = kInvalidQueryId;
    MediationCore::Outcome outcome = MediationCore::Outcome::kNoCandidates;
    /// Global provider indices selected, in selection order (empty unless
    /// outcome == kAllocated).
    std::vector<std::uint32_t> providers;
  };

  void Append(Record record) { records_.push_back(std::move(record)); }
  /// Concatenates `other`'s records onto this log. The serving tier's
  /// Stop() folds the per-group logs with this, in group order, so the
  /// merged stream is the deterministic group-order concatenation.
  void AppendAll(const DecisionLog& other) {
    records_.insert(records_.end(), other.records_.begin(),
                    other.records_.end());
  }
  const std::vector<Record>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  /// True when the two logs are bit-identical. On mismatch, `diff` (when
  /// non-null) gets a one-line description of the first divergence.
  bool IdenticalTo(const DecisionLog& other, std::string* diff) const;

 private:
  std::vector<Record> records_;
};

// ---------------------------------------------------------------------------
// System-level pieces shared verbatim by the mono-mediator and the sharded
// tier. They live here — next to the pipeline — so the M = 1 parity
// guarantee rests on shared code, not on two copies staying identical.
// ---------------------------------------------------------------------------

/// Nominal Poisson arrival rate at `t`, scaled by the surviving-consumer
/// share (Section 6.3.2's remark: fewer consumers issue fewer queries).
double ScaledArrivalRate(const SystemConfig& config,
                         const Population& population,
                         std::size_t active_consumers,
                         std::size_t initial_consumers, SimTime t);

/// The scenario's peak nominal arrival rate (queries/second): the
/// workload's maximum capacity fraction over the mean query cost. Bounds
/// ScaledArrivalRate over the whole run — the thinning envelope of the
/// Poisson arrival process, and the basis for batch-window sizing.
double NominalMaxArrivalRate(const SystemConfig& config,
                             const Population& population);

/// Draws one arriving query: uniform pick over the active consumers, then
/// a uniform query class. The draw order is part of the parity contract.
/// Call only while `active_consumers` is non-empty.
Query DrawArrivalQuery(const SystemConfig& config,
                       const Population& population,
                       const std::vector<std::uint32_t>& active_consumers,
                       Rng& consumer_pick_rng, Rng& query_class_rng,
                       QueryId id, SimTime now);

/// The Section 6.3.2 consumer-side departure rule (dissatisfaction below
/// adequation, with hysteresis): swap-removes departing consumers from
/// `active_consumers`, keeps the per-consumer violation counters in
/// `violations` (lazily sized), and records each departure into `result`.
void RunConsumerDepartureChecks(const DepartureConfig& departures,
                                std::vector<ConsumerAgent>& consumers,
                                std::vector<std::uint32_t>& active_consumers,
                                std::vector<std::uint32_t>& violations,
                                SimTime now, RunResult* result);

}  // namespace sqlb::runtime

#endif  // SQLB_RUNTIME_MEDIATION_CORE_H_
