#ifndef SQLB_RUNTIME_MEDIATION_CORE_H_
#define SQLB_RUNTIME_MEDIATION_CORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "core/allocation.h"
#include "des/simulator.h"
#include "matchmaking/matchmaker.h"
#include "model/query.h"
#include "runtime/consumer_agent.h"
#include "runtime/provider_agent.h"
#include "runtime/reputation.h"
#include "runtime/scenario.h"
#include "workload/population.h"

/// \file
/// The shard-agnostic heart of the mediation tier: one Algorithm-1 pipeline
/// (matchmaking -> intention gathering -> scoring/selection by the pluggable
/// AllocationMethod -> result dispatch -> completion accounting) plus the
/// Section 6.3.2 provider departure rules, all scoped to a *subset* of the
/// provider population.
///
/// `runtime::MediationSystem` runs exactly one core over every provider (the
/// paper's mono-mediator, Section 6.1); `shard::ShardedMediationSystem` runs
/// M cores over a consistent-hash partition of the providers. Both share
/// this code path, which is what makes the M = 1 parity guarantee hold
/// bit-for-bit rather than approximately.

namespace sqlb::runtime {

/// One per-shard Algorithm-1 pipeline over a member subset of the provider
/// population. Participant vectors are owned by the enclosing system and
/// indexed globally; the core only ever touches its member providers (and
/// the consumers that issue queries to it).
class MediationCore {
 public:
  /// Shared, system-owned state every core reads or sinks into. All
  /// pointers must outlive the core.
  struct Shared {
    const SystemConfig* config = nullptr;
    const Population* population = nullptr;
    std::vector<ProviderAgent>* providers = nullptr;
    std::vector<ConsumerAgent>* consumers = nullptr;
    ReputationRegistry* reputation = nullptr;
    /// Counter/departure/response-time sink (global across shards).
    RunResult* result = nullptr;
    /// Sliding response-time window behind the rt.window series.
    WindowedMean* response_window = nullptr;
  };

  /// What one mediation attempt did, so the caller (mono system or shard
  /// router) decides between counting an infeasible query and re-routing.
  enum class Outcome {
    /// Dispatched to >= 1 provider; the response callback will fire.
    kAllocated,
    /// Matchmaking returned an empty P_q (every member provider departed).
    kNoCandidates,
    /// Saturation pre-check tripped (see Allocate); nothing was mutated.
    kSaturated,
    /// The method selected no provider (strict economic broker); providers
    /// and the consumer recorded the failed round.
    kUnallocated,
  };

  /// `member_providers` lists the global indices this core mediates over.
  /// The method is not owned and must outlive the core.
  MediationCore(const Shared& shared, AllocationMethod* method,
                std::vector<std::uint32_t> member_providers);

  /// Runs Algorithm 1 for `query` over this core's active providers.
  ///
  /// When `saturation_backlog_seconds` > 0 and every candidate's queued
  /// work exceeds that many seconds, returns kSaturated *before* gathering
  /// intentions — no window, characterization or queue state changes, so a
  /// router may retry the query on another shard as if it never arrived
  /// here. Pass 0 (the mono-mediator setting) to disable the pre-check.
  Outcome Allocate(des::Simulator& sim, const Query& query,
                   double saturation_backlog_seconds = 0.0);

  /// The paper's provider-side departure rules (dissatisfaction,
  /// starvation, overutilization — first match wins) over this core's
  /// active members. `optimal_ut` is the nominal workload fraction at the
  /// check time.
  void RunProviderDepartureChecks(SimTime now, double optimal_ut);

  // --- Load and membership introspection ----------------------------------

  const std::vector<std::uint32_t>& active_providers() const {
    return active_providers_;
  }
  std::size_t active_provider_count() const {
    return active_providers_.size();
  }
  std::size_t initial_provider_count() const { return initial_members_; }

  /// Mean committed utilization over active members at `now` (the gossip
  /// load-report payload; > 1 under sustained overload).
  double MeanCommittedUtilization(SimTime now) const;
  /// Mean seconds of queued work over active members.
  double MeanBacklogSeconds() const;

  AllocationMethod* method() const { return method_; }
  std::uint64_t allocated_queries() const { return allocated_queries_; }
  std::uint64_t pending_responses() const { return pending_.size(); }

 private:
  struct PendingResponse {
    SimTime issue_time;
    std::uint32_t outstanding;
  };

  void OnQueryCompleted(const Query& query, ProviderId performer,
                        SimTime completion_time);
  void DepartProvider(std::size_t index, DepartureReason reason, SimTime now);

  Shared shared_;
  AllocationMethod* method_;
  AcceptAllMatchmaker matchmaker_;

  /// Global indices of still-active member providers (swap-removed on
  /// departure, mirroring the mono-mediator's active list).
  std::vector<std::uint32_t> active_providers_;
  std::size_t initial_members_ = 0;

  std::unordered_map<QueryId, PendingResponse> pending_;
  std::uint64_t allocated_queries_ = 0;

  // Chronic-utilization bookkeeping for the starvation rule: allocated
  // units and timestamp at each member's previous departure check, indexed
  // globally.
  std::vector<double> units_at_last_check_;
  SimTime last_check_time_ = 0.0;

  // Scratch buffers reused across allocations (the hot path).
  AllocationRequest scratch_request_;
  std::vector<double> scratch_consumer_pref_;
  std::vector<double> scratch_provider_pref_;
  std::vector<double> scratch_ci_;
  std::vector<double> scratch_selected_ci_;
};

// ---------------------------------------------------------------------------
// System-level pieces shared verbatim by the mono-mediator and the sharded
// tier. They live here — next to the pipeline — so the M = 1 parity
// guarantee rests on shared code, not on two copies staying identical.
// ---------------------------------------------------------------------------

/// Nominal Poisson arrival rate at `t`, scaled by the surviving-consumer
/// share (Section 6.3.2's remark: fewer consumers issue fewer queries).
double ScaledArrivalRate(const SystemConfig& config,
                         const Population& population,
                         std::size_t active_consumers,
                         std::size_t initial_consumers, SimTime t);

/// Draws one arriving query: uniform pick over the active consumers, then
/// a uniform query class. The draw order is part of the parity contract.
/// Call only while `active_consumers` is non-empty.
Query DrawArrivalQuery(const SystemConfig& config,
                       const Population& population,
                       const std::vector<std::uint32_t>& active_consumers,
                       Rng& consumer_pick_rng, Rng& query_class_rng,
                       QueryId id, SimTime now);

/// The Section 6.3.2 consumer-side departure rule (dissatisfaction below
/// adequation, with hysteresis): swap-removes departing consumers from
/// `active_consumers`, keeps the per-consumer violation counters in
/// `violations` (lazily sized), and records each departure into `result`.
void RunConsumerDepartureChecks(const DepartureConfig& departures,
                                std::vector<ConsumerAgent>& consumers,
                                std::vector<std::uint32_t>& active_consumers,
                                std::vector<std::uint32_t>& violations,
                                SimTime now, RunResult* result);

}  // namespace sqlb::runtime

#endif  // SQLB_RUNTIME_MEDIATION_CORE_H_
