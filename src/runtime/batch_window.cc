#include "runtime/batch_window.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace sqlb::runtime {

BatchWindowController::BatchWindowController(const AdaptiveBatchConfig& config)
    : config_(config) {
  SQLB_CHECK(config_.min_window >= 0.0, "min_window must be >= 0");
  SQLB_CHECK(config_.max_window >= config_.min_window,
             "max_window must admit min_window");
  SQLB_CHECK(config_.target_burst > 0.0, "target_burst must be positive");
  SQLB_CHECK(config_.ewma_tau > 0.0, "ewma_tau must be positive");
  SQLB_CHECK(config_.backlog_ref > 0.0, "backlog_ref must be positive");
}

void BatchWindowController::OnArrival(SimTime now) {
  if (last_arrival_ == -kSimTimeInfinity) {
    // First arrival: no interval to estimate a rate from yet.
    last_arrival_ = now;
    return;
  }
  const double dt = std::max(now - last_arrival_, 1e-9);
  last_arrival_ = now;
  // Irregular-interval EWMA: an observation's weight decays with the time
  // it covers, so a long silent gap pulls the rate down by the same
  // arithmetic a run of rapid arrivals pulls it up.
  const double alpha = 1.0 - std::exp(-dt / config_.ewma_tau);
  const double instantaneous = 1.0 / dt;
  rate_ += alpha * (instantaneous - rate_);
}

void BatchWindowController::OnBacklogSample(double backlog_seconds) {
  backlog_ = std::max(0.0, backlog_seconds);
}

double BatchWindowController::Window() const {
  if (rate_ <= 0.0) return config_.min_window;
  // Rate-matched ceiling: hold arrivals just long enough to coalesce
  // ~target_burst of them at the current rate.
  const double rate_matched =
      std::min(config_.target_burst / rate_, config_.max_window);
  // Queue-debt gate: spend that window only in proportion to how much
  // amortizable mediation pressure the shard actually carries.
  const double debt = std::min(backlog_ / config_.backlog_ref, 1.0);
  const double window =
      config_.min_window + (rate_matched - config_.min_window) * debt;
  return std::clamp(window, config_.min_window, config_.max_window);
}

}  // namespace sqlb::runtime
