#ifndef SQLB_RUNTIME_BATCH_WINDOW_H_
#define SQLB_RUNTIME_BATCH_WINDOW_H_

#include "common/types.h"

/// \file
/// Per-shard adaptive sizing of the batched-intake coalescing window.
///
/// A static `batch_window` trades response time for intake throughput with
/// one global constant, which is wrong in both directions at once: an idle
/// shard delays its lone query for the full window and gets nothing back,
/// while a shard that a herding (stale-gossip) router floods with an entire
/// epoch's arrivals coalesces them into one huge burst whose tail queries
/// wait far longer than the amortization is worth (the `8-ll-batch` arm of
/// bench/scale_sharding.cc measures that worst case). The controller sizes
/// the window per shard from two deterministic signals:
///
///  - an EWMA of the shard's arrival rate (updated on every routed arrival,
///    on the coordinator — never from lane threads), which rate-matches the
///    window to a target burst length: window ~ target_burst / rate, so a
///    flooded shard *shrinks* its window (the bursts stay near the target
///    length) and a trickle shard never waits long for a burst that is not
///    coming; and
///  - the shard's queue debt (mean provider backlog, sampled at the
///    periodic load-report barrier, where the lanes are quiescent), which
///    gates how much of that rate-matched window is actually spent:
///    batching only pays when mediation work is worth amortizing, so with
///    no backlog the window collapses toward min_window (latency mode) and
///    under sustained queue debt it opens up to the full rate-matched value
///    (throughput mode).
///
/// The result is clamped to [min_window, max_window]. Both inputs advance
/// only at deterministic points of the simulation (arrival events and
/// barrier tasks), so adaptive windows preserve the strict-parity
/// bit-identity contract across thread counts.

namespace sqlb::runtime {

struct AdaptiveBatchConfig {
  /// Master switch (shard::ShardedSystemConfig wires it): when true the
  /// sharded intake always runs through the coalescing path, with the
  /// window recomputed per arrival.
  bool enabled = false;
  /// Window bounds, in simulated seconds. min_window = 0 mediates
  /// effectively inline when idle (the flush fires at the arrival time).
  double min_window = 0.0;
  double max_window = 2.0;
  /// Desired mean burst length the rate-matched window aims for.
  double target_burst = 8.0;
  /// EWMA horizon (seconds) of the arrival-rate estimate; the weight of an
  /// observation decays as exp(-dt / ewma_tau).
  double ewma_tau = 5.0;
  /// Queue debt (seconds of mean provider backlog) at which the window
  /// opens fully to the rate-matched value; below it the window scales
  /// linearly down toward min_window.
  double backlog_ref = 5.0;
};

/// One shard's window controller. Pure arithmetic over the config and the
/// two signals; no clock access of its own.
class BatchWindowController {
 public:
  explicit BatchWindowController(const AdaptiveBatchConfig& config);

  /// Records one routed arrival at `now` (non-decreasing) and updates the
  /// arrival-rate EWMA.
  void OnArrival(SimTime now);

  /// Records the latest barrier-sampled queue debt (mean provider backlog
  /// seconds of the shard's members).
  void OnBacklogSample(double backlog_seconds);

  /// The coalescing window an arrival right now should be held for.
  double Window() const;

  double arrival_rate() const { return rate_; }
  double backlog_seconds() const { return backlog_; }

 private:
  AdaptiveBatchConfig config_;
  SimTime last_arrival_ = -kSimTimeInfinity;
  /// EWMA arrival rate, queries/second (0 until two arrivals were seen).
  double rate_ = 0.0;
  double backlog_ = 0.0;
};

}  // namespace sqlb::runtime

#endif  // SQLB_RUNTIME_BATCH_WINDOW_H_
