// The e-marketplace scenario of Section 1.1, run on the *distributed*
// (message-passing) runtime: eWine asks the mediator for companies able to
// ship wine internationally; providers answer intention requests; the
// mediator scores, ranks and allocates with SQLB; responses flow back over
// the simulated network.
//
// This example exercises the parts of the library the batch experiments
// bypass: real term-based matchmaking (P_q is a strict subset of the
// provider population), the fork/waituntil/timeout mediation of
// Algorithm 1, and the reputation registry behind Definition 7.
//
//   $ ./build/examples/emarketplace

#include <cstdio>
#include <memory>
#include <vector>

#include "core/sqlb_method.h"
#include "matchmaking/matchmaker.h"
#include "msg/network.h"
#include "runtime/async_mediator.h"

int main() {
  using namespace sqlb;

  des::Simulator sim;
  msg::Network network(sim, msg::LatencyModel{0.010, 0.005}, Rng(2024));

  // --- The marketplace catalogue -----------------------------------------
  TermDictionary dict;
  const auto kShipping = dict.Intern("shipping");
  const auto kInternational = dict.Intern("international");
  const auto kNational = dict.Intern("national");
  const auto kCompute = dict.Intern("compute");

  struct Listing {
    const char* name;
    std::vector<std::uint32_t> capability;
  };
  const std::vector<Listing> listings = {
      {"p1-globalfreight", {kShipping, kInternational}},
      {"p2-asiacargo", {kShipping, kInternational}},
      {"p3-wineexpress", {kShipping, kInternational, kNational}},
      {"p4-localcourier", {kShipping, kNational}},
      {"p5-gridworks", {kCompute}},
  };

  // --- Wire the distributed system ---------------------------------------
  PopulationConfig pop_config;
  pop_config.num_consumers = 2;
  pop_config.num_providers = listings.size();
  Population population(pop_config, /*seed=*/99);
  runtime::ReputationRegistry reputation(listings.size());
  reputation.Set(ProviderId(0), 0.9);   // well-reputed
  reputation.Set(ProviderId(1), -0.4);  // eWine has heard bad things
  reputation.Set(ProviderId(2), 0.5);
  reputation.Set(ProviderId(3), 0.2);
  reputation.Set(ProviderId(4), 0.8);

  SqlbMethod method;
  TermIndexMatchmaker matchmaker;
  runtime::AsyncMediator mediator(runtime::AsyncMediatorConfig{}, &method,
                                  &matchmaker);
  mediator.set_address(network.Register(&mediator));

  // Consumers blend preference and reputation (upsilon = 0.4: eWine has
  // little direct experience, so reputation weighs more — Section 5.1).
  runtime::ConsumerAgentConfig consumer_config;
  consumer_config.intention.mode = ConsumerIntentionMode::kFormula;
  consumer_config.intention.upsilon = 0.4;

  std::vector<std::unique_ptr<runtime::AsyncConsumerNode>> consumers;
  for (std::uint32_t c = 0; c < pop_config.num_consumers; ++c) {
    auto node = std::make_unique<runtime::AsyncConsumerNode>(
        ConsumerId(c), consumer_config, &population, &reputation);
    node->set_address(network.Register(node.get()));
    mediator.RegisterConsumer(ConsumerId(c), node->address());
    consumers.push_back(std::move(node));
  }

  std::vector<std::unique_ptr<runtime::AsyncProviderNode>> providers;
  for (std::uint32_t p = 0; p < listings.size(); ++p) {
    auto node = std::make_unique<runtime::AsyncProviderNode>(
        population.provider(ProviderId(p)), runtime::ProviderAgentConfig{},
        &population);
    node->set_address(network.Register(node.get()));
    node->SetConsumerDirectory(&mediator.consumer_directory());
    mediator.RegisterProvider(ProviderId(p), node->address());
    matchmaker.Register(ProviderId(p), Capability(listings[p].capability));
    providers.push_back(std::move(node));
  }

  // --- eWine's call for proposals ----------------------------------------
  // q.d = {shipping, international}; q.n = 2: proposals from the two best.
  Query query;
  query.id = 1;
  query.consumer = ConsumerId(0);
  query.n = 2;
  query.units = 140.0;
  query.required_terms = {kShipping, kInternational};
  query.issue_time = sim.Now();

  const auto match = matchmaker.Match(query);
  std::printf("matchmaking: P_q = {");
  for (std::size_t i = 0; i < match.size(); ++i) {
    std::printf("%s%s", i > 0 ? ", " : "", listings[match[i].index()].name);
  }
  std::printf("}  (%zu of %zu listings cover the required terms)\n",
              match.size(), listings.size());

  consumers[0]->Submit(network, mediator.address(), query);

  // A second buyer wants compute capacity (the paper's grid scenario) —
  // a disjoint P_q through the same mediator.
  Query job;
  job.id = 2;
  job.consumer = ConsumerId(1);
  job.n = 1;
  job.units = 300.0;
  job.required_terms = {kCompute};
  job.issue_time = sim.Now();
  consumers[1]->Submit(network, mediator.address(), job);

  sim.RunAll();

  std::printf("\nafter the mediation rounds:\n");
  std::printf("  mediations completed : %llu (timeouts: %llu)\n",
              static_cast<unsigned long long>(
                  mediator.mediations_completed()),
              static_cast<unsigned long long>(mediator.timeouts()));
  std::printf("  network messages     : %llu sent, %llu delivered\n",
              static_cast<unsigned long long>(network.sent_messages()),
              static_cast<unsigned long long>(
                  network.delivered_messages()));
  for (std::uint32_t c = 0; c < consumers.size(); ++c) {
    // RawSatisfaction: the unblended Eq. 2 average over the (few) issued
    // queries; the blended Satisfaction() would still sit near the 0.5
    // prior after a single interaction.
    std::printf("  consumer %u           : %llu response(s), "
                "per-query satisfaction %.3f\n",
                c,
                static_cast<unsigned long long>(
                    consumers[c]->responses_received()),
                consumers[c]->agent().window().RawSatisfaction());
  }
  for (std::uint32_t p = 0; p < providers.size(); ++p) {
    const auto& window = providers[p]->agent().window();
    std::printf("  %-18s: proposed %llu, performed %llu\n",
                listings[p].name,
                static_cast<unsigned long long>(window.proposed()),
                static_cast<unsigned long long>(window.performed()));
  }
  return 0;
}
