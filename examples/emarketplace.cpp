// The e-marketplace scenario of Section 1.1, served live: buyer threads
// submit queries into the wall-clock serving tier through the unified
// sqlb::Service facade, SQLB mediates them in real time against the
// provider population, and the run's recorded trace then replays through
// the deterministic simulator — the replay oracle — to prove the served
// allocation decisions are exactly the ones the DES would have made.
//
//   $ ./build/examples/emarketplace

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sqlb_method.h"
#include "sqlb/service.h"

int main() {
  using namespace sqlb;

  // --- The marketplace ----------------------------------------------------
  // A small pool of shipping/compute companies (providers) serving a
  // handful of buyers (consumers). Two query classes stand in for the wine
  // shipment (130 units) and the compute job (150 units) of Section 1.1.
  Config config;
  config.mode = Mode::kServing;
  runtime::SystemConfig& scenario = config.scenario();
  scenario.population.num_consumers = 8;
  scenario.population.num_providers = 20;
  scenario.seed = 99;
  scenario.record_series = false;
  config.serving.shards = 2;
  // 50 simulated seconds of provider capacity per wall second: the demo
  // finishes in well under a second of wall time.
  config.serving.time_scale = 50.0;
  config.serving.max_burst = 16;

  Status status;
  std::unique_ptr<Service> service = Service::Create(
      config, [](std::uint32_t) { return std::make_unique<SqlbMethod>(); },
      &status);
  if (service == nullptr) {
    std::fprintf(stderr, "invalid config: %s\n", status.message().c_str());
    return 1;
  }

  // --- Buyer threads ------------------------------------------------------
  constexpr std::uint32_t kBuyers = 2;
  constexpr std::uint64_t kQueriesPerBuyer = 400;
  const std::size_t num_classes = scenario.population.query_class_units.size();
  std::vector<runtime::ServingProducer*> producers;
  for (std::uint32_t b = 0; b < kBuyers; ++b) {
    producers.push_back(service->RegisterProducer());
  }
  service->Start();

  std::vector<std::thread> buyers;
  for (std::uint32_t b = 0; b < kBuyers; ++b) {
    buyers.emplace_back([&, b] {
      runtime::ServingProducer* producer = producers[b];
      for (std::uint64_t i = 0; i < kQueriesPerBuyer; ++i) {
        const std::uint32_t consumer =
            static_cast<std::uint32_t>((b + kBuyers * i) %
                                       scenario.population.num_consumers);
        const std::uint32_t cls = static_cast<std::uint32_t>(i % num_classes);
        while (!service->Submit(producer, consumer, cls)) {
          std::this_thread::yield();  // intake backpressure: retry
        }
        // Closed loop: wait for this buyer's submissions to be mediated
        // before issuing the next one.
        producer->AwaitMediated(producer->submitted());
      }
    });
  }
  for (std::thread& t : buyers) t.join();
  service->Drain();
  runtime::ServingReport report = service->Stop();

  std::printf("served %llu queries in %.3f s wall (%llu bursts, %llu shed)\n",
              static_cast<unsigned long long>(report.served),
              report.wall_seconds,
              static_cast<unsigned long long>(report.bursts),
              static_cast<unsigned long long>(report.shed));
  std::printf("intake->mediation wall latency: p50 %.1f us  p99 %.1f us  "
              "p999 %.1f us\n",
              report.intake_wall.Quantile(0.50) * 1e6,
              report.intake_wall.Quantile(0.99) * 1e6,
              report.intake_wall.Quantile(0.999) * 1e6);
  std::printf("conservation: completed %llu + infeasible %llu == issued "
              "%llu\n",
              static_cast<unsigned long long>(report.run.queries_completed),
              static_cast<unsigned long long>(report.run.queries_infeasible),
              static_cast<unsigned long long>(report.run.queries_issued));

  // --- The replay oracle --------------------------------------------------
  // Re-drive the recorded bursts through the DES with an identically
  // configured system; every allocation decision must come out the same.
  runtime::ServingReplayResult replay = service->Replay();
  std::string diff;
  const bool identical =
      service->trace().decisions.IdenticalTo(replay.decisions, &diff);
  std::printf("replay oracle: %zu decisions, %s\n",
              service->trace().decisions.size(),
              identical ? "bit-identical to the live run"
                        : diff.c_str());
  return identical ? 0 : 1;
}
