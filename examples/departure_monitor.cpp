// Departure prediction — the second purpose of the characterization model
// (Section 3.3): "to evaluate the reasons of the participants' departures
// from the system", before they happen.
//
// The paper's Section 6.3.1 makes exactly this move: from *captive* runs it
// predicts that Capacity based "will suffer from serious problems with
// providers' departures by dissatisfaction reasons" (mu(das,P) < 1) and
// that the baselines "may suffer from consumer's departures" (mu(das,C)
// stuck at 1) while SQLB will not (mu(das,C) > 1). Phase 1 reproduces the
// captive diagnosis; phase 2 enables autonomy and verifies each prediction.
//
//   $ ./build/examples/departure_monitor

#include <cstdio>
#include <string>

#include "experiments/experiments.h"
#include "runtime/mediation_system.h"

namespace {

struct Diagnosis {
  double provider_allocsat = 0.0;  // mu(das, P) on preferences
  double consumer_allocsat = 0.0;  // mu(das, C)
};

Diagnosis CaptiveDiagnosis(const sqlb::runtime::SystemConfig& base,
                           sqlb::experiments::MethodKind kind) {
  using sqlb::runtime::MediationSystem;
  sqlb::runtime::SystemConfig config = base;  // captive: no departures
  sqlb::runtime::RunResult result = sqlb::experiments::RunMethod(kind, config);
  Diagnosis d;
  d.provider_allocsat =
      result.series.Find(MediationSystem::kSeriesProvAllocSatPrefMean)
          ->MeanOver(config.duration / 3, config.duration);
  d.consumer_allocsat =
      result.series.Find(MediationSystem::kSeriesConsAllocSatMean)
          ->MeanOver(config.duration / 3, config.duration);
  return d;
}

}  // namespace

int main() {
  using namespace sqlb;

  runtime::SystemConfig config;
  config.population.num_consumers = 50;
  config.population.num_providers = 100;
  config.workload = runtime::WorkloadSpec::Constant(0.8);
  config.duration = 1200.0;
  config.seed = 5;
  // Keep the papers' provider-to-window sparsity at this reduced scale:
  // with ~1 performed query per window of proposals, satisfaction is the
  // small-sample signal the characterization model is designed around.
  config.provider.window.capacity = 150;
  config.consumer.window.capacity = 100;

  const experiments::MethodKind methods[] = {
      experiments::MethodKind::kCapacityBased,
      experiments::MethodKind::kSqlb,
  };

  std::printf("phase 1 — captive diagnosis (Section 3.3 metrics):\n");
  Diagnosis diagnosis[2];
  for (int m = 0; m < 2; ++m) {
    diagnosis[m] = CaptiveDiagnosis(config, methods[m]);
    std::printf("  %-14s mu(das,P) = %.3f -> %s;  mu(das,C) = %.3f -> %s\n",
                experiments::MethodName(methods[m]).c_str(),
                diagnosis[m].provider_allocsat,
                diagnosis[m].provider_allocsat < 1.1
                    ? "at best neutral to providers: expect "
                      "dissatisfaction exits"
                    : "works for providers",
                diagnosis[m].consumer_allocsat,
                diagnosis[m].consumer_allocsat > 1.05
                    ? "works for consumers"
                    : "neutral to consumers: expect consumer exits");
  }

  std::printf("\nphase 2 — the same systems with autonomous "
              "participants:\n");
  config.departures = runtime::DepartureConfig::AllEnabled();
  config.departures.grace_period = 300.0;
  config.departures.check_interval = 300.0;
  for (int m = 0; m < 2; ++m) {
    runtime::RunResult result = experiments::RunMethod(methods[m], config);
    std::printf("  %-14s provider exits %5.1f%% (dissat %llu, starv %llu, "
                "overuse %llu);  consumer exits %5.1f%%\n",
                experiments::MethodName(methods[m]).c_str(),
                result.ProviderDeparturePercent(),
                static_cast<unsigned long long>(result.tally.ByReason(
                    runtime::DepartureReason::kDissatisfaction)),
                static_cast<unsigned long long>(result.tally.ByReason(
                    runtime::DepartureReason::kStarvation)),
                static_cast<unsigned long long>(result.tally.ByReason(
                    runtime::DepartureReason::kOverutilization)),
                result.ConsumerDeparturePercent());
  }

  std::printf(
      "\nthe captive metrics called it: the method that gives providers "
      "no surplus\n(mu(das,P) ~ 1) bleeds them by dissatisfaction, the "
      "method neutral to consumers\nbleeds consumers, and SQLB (both "
      "ratios well above 1) retains both sides —\nSection 3.3's model as "
      "an early-warning monitor.\n");
  return 0;
}
