// Churn + runtime re-partitioning: a mediator fleet that survives its
// providers leaving and returning.
//
// Runs an 8-shard fleet under a churn schedule that guts one shard — every
// provider the epoch-0 ring assigns to shard 0 leaves a third into the run
// and rejoins at two thirds — with ring rebalancing on. Watch the partition
// adapt to imbalance from *any* source: the very first rebalance tick
// already reweights the ring (the seed hash partition is lopsided — one
// shard draws ~4x the members of another), providers seal, drain their
// queues and hand their mediation state to the new owning shard at
// rebalance barriers, and the mid-run rejoiners land wherever the *current*
// ring epoch puts them, not where they started. A coda reruns the same
// scenario wall-clock-parallel under strict parity: the result is
// bit-identical, churn, reweighs and handoffs included.
//
//   $ ./build/churn_rebalance

#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "core/sqlb_method.h"
#include "runtime/mediation_system.h"
#include "shard/sharded_mediation_system.h"
#include "sqlb/service.h"

int main() {
  using namespace sqlb;

  // 1. The scenario: a steady near-capacity grid, strict-parity shape
  //    (consumer-affine routing, no rerouting) so the parallel coda can be
  //    compared bit for bit.
  shard::ShardedSystemConfig config;
  config.base.population.num_consumers = 100;
  config.base.population.num_providers = 200;
  config.base.workload = runtime::WorkloadSpec::Constant(0.9);
  config.base.duration = 600.0;
  config.base.stats_warmup = 100.0;
  config.base.seed = 7;

  config.router.num_shards = 8;
  config.router.policy = shard::RoutingPolicy::kLocality;
  config.rerouting_enabled = false;

  // 2. Re-partitioning on: every 30 simulated seconds the fleet checks the
  //    per-shard member counts and reweights the ring past a 1.5x
  //    imbalance.
  config.rebalance_enabled = true;
  config.rebalance_interval = 30.0;

  // 3. The churn script: shard 0's members (scheduled off the same ring
  //    geometry the system builds) all leave at t = 200 and rejoin at
  //    t = 400.
  config.base.provider_churn = shard::ShardChurnSchedule(
      config.router, /*shard=*/0, /*num_providers=*/200,
      /*leave_at=*/200.0, /*rejoin_at=*/400.0);

  Config service_config;
  service_config.mode = Mode::kSharded;
  service_config.sharded = config;
  const shard::ShardedRunResult result =
      Service::Create(service_config, [](std::uint32_t) {
        return std::make_unique<SqlbMethod>();
      })->Run();

  std::printf("method               : %s on %zu shards (%s routing)\n",
              result.run.method_name.c_str(), result.shards.size(),
              RoutingPolicyName(config.router.policy));
  std::printf("churn events         : %zu (leave+rejoin of shard 0's %llu "
              "members)\n",
              config.base.provider_churn.events.size(),
              static_cast<unsigned long long>(result.run.provider_joins));
  std::printf("queries issued       : %llu\n",
              static_cast<unsigned long long>(result.run.queries_issued));
  std::printf("queries completed    : %llu (infeasible %llu)\n",
              static_cast<unsigned long long>(result.run.queries_completed),
              static_cast<unsigned long long>(result.run.queries_infeasible));
  std::printf("mean response time   : %.2f s\n",
              result.run.response_time.mean());
  std::printf("ring epoch / reweighs: %llu / %llu\n",
              static_cast<unsigned long long>(result.ring_epoch),
              static_cast<unsigned long long>(result.ring_rebalances));
  std::printf("handoffs             : %llu started, %llu completed, %llu "
              "cancelled\n",
              static_cast<unsigned long long>(result.handoffs_started),
              static_cast<unsigned long long>(result.handoffs_completed),
              static_cast<unsigned long long>(result.handoffs_cancelled));
  std::printf("epoch-lagged reports : %llu (gossip still in flight when the "
              "ring moved)\n\n",
              static_cast<unsigned long long>(result.epoch_lagged_reports));

  // 4. The shard-tier view: migrations in/out and where the rejoiners
  //    landed.
  std::printf("shard  initial  in  out  joined  remaining  allocated\n");
  for (std::size_t s = 0; s < result.shards.size(); ++s) {
    const shard::ShardStats& stats = result.shards[s];
    std::printf("%5zu  %7zu  %2llu  %3llu  %6llu  %9zu  %9llu\n", s,
                stats.initial_providers,
                static_cast<unsigned long long>(stats.providers_in),
                static_cast<unsigned long long>(stats.providers_out),
                static_cast<unsigned long long>(stats.joined),
                stats.remaining_providers,
                static_cast<unsigned long long>(stats.allocated));
  }

  // 5. The parity coda: same scenario on worker threads, strict parity —
  //    churn, rebalances and handoffs must replay bit-identically.
  shard::ShardedSystemConfig parallel_config = config;
  parallel_config.worker_threads =
      std::max(2u, std::thread::hardware_concurrency());
  Config parallel_service_config;
  parallel_service_config.mode = Mode::kSharded;
  parallel_service_config.sharded = parallel_config;
  const shard::ShardedRunResult parallel =
      Service::Create(parallel_service_config, [](std::uint32_t) {
        return std::make_unique<SqlbMethod>();
      })->Run();

  const bool identical =
      parallel.run.queries_issued == result.run.queries_issued &&
      parallel.run.queries_completed == result.run.queries_completed &&
      parallel.run.response_time.mean() == result.run.response_time.mean() &&
      parallel.ring_epoch == result.ring_epoch &&
      parallel.handoffs_completed == result.handoffs_completed &&
      parallel.ownership_digests == result.ownership_digests;
  std::printf(
      "\nstrict-parity rerun on %zu worker threads: %s (issued %llu, "
      "completed %llu, epoch %llu, %llu handoffs)\n",
      parallel_config.worker_threads,
      identical ? "BIT-IDENTICAL" : "DIVERGED (bug!)",
      static_cast<unsigned long long>(parallel.run.queries_issued),
      static_cast<unsigned long long>(parallel.run.queries_completed),
      static_cast<unsigned long long>(parallel.ring_epoch),
      static_cast<unsigned long long>(parallel.handoffs_completed));
  return identical ? 0 : 1;
}
