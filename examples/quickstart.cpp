// Quickstart: the smallest end-to-end SQLB system.
//
// Builds a Table-2-style population (scaled down), runs the mediation
// system for five simulated minutes with the SQLB allocation method, and
// prints the satisfaction/fairness metrics the framework is about.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "core/sqlb_method.h"
#include "experiments/experiments.h"
#include "model/metrics.h"
#include "runtime/mediation_system.h"
#include "sqlb/service.h"

int main() {
  using namespace sqlb;

  // 1. Configure the system through the unified facade. The scenario knobs
  //    (sqlb::Config::scenario()) mirror the paper's Table 2; here we
  //    shrink the population so the example runs in milliseconds.
  Config service_config;
  service_config.mode = Mode::kMono;
  runtime::SystemConfig& config = service_config.scenario();
  config.population.num_consumers = 20;
  config.population.num_providers = 40;
  config.workload = runtime::WorkloadSpec::Constant(0.6);  // 60% load
  config.duration = 300.0;                                 // simulated s
  config.stats_warmup = 50.0;  // ignore the cold start in the RT stats
  config.seed = 7;

  // 2. Pick an allocation method. SqlbMethod is the paper's contribution;
  //    methods/*.h has the baselines (CapacityBased, Mariposa-like, ...).
  //    The factory makes one instance per shard (mono uses exactly one).
  std::unique_ptr<Service> service = Service::Create(
      service_config,
      [](std::uint32_t) { return std::make_unique<SqlbMethod>(); });

  // 3. Run. The system simulates Poisson query arrivals, Algorithm 1
  //    mediation, FIFO service at providers, and collects metrics.
  runtime::RunResult result = service->Run().run;

  // 4. Inspect the outcome.
  std::printf("method            : %s\n", result.method_name.c_str());
  std::printf("queries issued    : %llu\n",
              static_cast<unsigned long long>(result.queries_issued));
  std::printf("queries completed : %llu\n",
              static_cast<unsigned long long>(result.queries_completed));
  std::printf("mean response time: %.2f s\n", result.response_time.mean());

  // The Section 4 metrics over the collected series: the final consumer
  // allocation satisfaction should sit above 1 (SQLB works *for* the
  // consumers), and utilization should hover near the 0.6 workload.
  const auto* allocsat = result.series.Find(
      runtime::MediationSystem::kSeriesConsAllocSatMean);
  const auto* utilization =
      result.series.Find(runtime::MediationSystem::kSeriesUtMean);
  std::printf("consumer allocation satisfaction (final): %.3f\n",
              allocsat->samples.back().second);
  std::printf("provider utilization mean (final)       : %.3f\n",
              utilization->samples.back().second);

  // 5. The same metrics are available as plain functions (Eqs. 3-5):
  const std::vector<double> example{0.2, 1.0, 0.6};
  std::printf("\nSection 4 metrics on {0.2, 1.0, 0.6}: mean %.2f, "
              "fairness %.2f, min-max %.2f\n",
              Mean(example), JainFairness(example),
              MinMaxRatio(example, 0.1));
  return 0;
}
