// Sharded grid: a mediator fleet over one provider population.
//
// Runs the Table-2-style scenario of examples/compute_grid.cpp on the
// sharded mediation tier instead of the mono-mediator: 8 mediators over a
// consistent-hash partition of 200 providers, least-loaded routing fed by
// periodic load-report gossip over the simulated network, and re-routing
// when a shard's candidate set is empty or saturated. A coda reruns the
// same fleet wall-clock-parallel under relaxed parity (per-consumer
// sequence locks let least-loaded routing run on worker threads).
//
//   $ ./build/sharded_grid

#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "core/sqlb_method.h"
#include "runtime/mediation_system.h"
#include "shard/sharded_mediation_system.h"
#include "sqlb/service.h"

int main() {
  using namespace sqlb;

  // 1. The scenario: same knobs as a mono-mediator run (the `base` field
  //    IS a SystemConfig), plus the shard-tier topology.
  shard::ShardedSystemConfig config;
  config.base.population.num_consumers = 100;
  config.base.population.num_providers = 200;
  config.base.workload = runtime::WorkloadSpec::Constant(0.85);
  config.base.duration = 600.0;
  config.base.stats_warmup = 100.0;
  config.base.seed = 7;

  config.router.num_shards = 8;
  config.router.policy = shard::RoutingPolicy::kLeastLoaded;
  config.router.report_staleness = 30.0;

  config.gossip_interval = 5.0;           // load reports every 5 s...
  config.gossip_latency = {0.01, 0.02};   // ...delivered 10-30 ms later
  config.rerouting_enabled = true;
  config.saturation_backlog_seconds = 20.0;  // bounce off drowning shards

  // 2. One allocation method instance per shard (they are stateful); the
  //    facade validates the config and builds the sharded driver.
  Config service_config;
  service_config.mode = Mode::kSharded;
  service_config.sharded = config;
  std::unique_ptr<Service> service = Service::Create(
      service_config,
      [](std::uint32_t) { return std::make_unique<SqlbMethod>(); });

  // 3. Run: Poisson arrivals -> router -> per-shard Algorithm 1 -> FIFO
  //    service, with gossip and departure checks on the same clock.
  const shard::ShardedRunResult result = service->Run();

  std::printf("method             : %s on %zu shards (%s routing)\n",
              result.run.method_name.c_str(), result.shards.size(),
              RoutingPolicyName(config.router.policy));
  std::printf("queries issued     : %llu\n",
              static_cast<unsigned long long>(result.run.queries_issued));
  std::printf("queries completed  : %llu\n",
              static_cast<unsigned long long>(result.run.queries_completed));
  std::printf("mean response time : %.2f s\n",
              result.run.response_time.mean());
  std::printf("gossip delivered   : %llu load reports\n",
              static_cast<unsigned long long>(result.gossip_delivered));
  std::printf("reroutes / rescues : %llu / %llu\n",
              static_cast<unsigned long long>(result.reroutes),
              static_cast<unsigned long long>(result.reroute_rescues));
  std::printf("route imbalance    : %.3f (1 = perfectly even)\n\n",
              result.RouteImbalance());

  // 4. The shard-tier view: who held which slice of the population and of
  //    the traffic.
  std::printf("shard  providers  routed  allocated  mean ut\n");
  for (std::size_t s = 0; s < result.shards.size(); ++s) {
    const shard::ShardStats& stats = result.shards[s];
    const auto* ut = result.run.series.Find(
        shard::ShardedMediationSystem::kSeriesShardUtPrefix +
        std::to_string(s));
    std::printf("%5zu  %9zu  %6llu  %9llu  %7.3f\n", s,
                stats.initial_providers,
                static_cast<unsigned long long>(stats.routed),
                static_cast<unsigned long long>(stats.allocated),
                ut != nullptr ? ut->MeanOver(100.0, config.base.duration)
                              : 0.0);
  }

  // 5. Aggregated quality metrics use the same series keys as the
  //    mono-mediator, so existing tooling reads sharded runs unchanged.
  const auto* allocsat = result.run.series.Find(
      runtime::MediationSystem::kSeriesConsAllocSatMean);
  std::printf("\nconsumer allocation satisfaction (final): %.3f\n",
              allocsat->samples.back().second);

  // 6. The same fleet, wall-clock-parallel: strict parity would reject
  //    least-loaded routing (one consumer's queries may mediate on several
  //    shards inside an epoch), so opt into relaxed parity — per-consumer
  //    sequence locks, counters conserved exactly, bounded drift in the
  //    time/satisfaction aggregates.
  shard::ShardedSystemConfig relaxed = config;
  relaxed.rerouting_enabled = false;  // a mid-epoch bounce would couple lanes
  relaxed.worker_threads = std::max(2u, std::thread::hardware_concurrency());
  relaxed.parity = shard::ParityMode::kRelaxed;
  Config relaxed_config;
  relaxed_config.mode = Mode::kSharded;
  relaxed_config.sharded = relaxed;
  const shard::ShardedRunResult parallel =
      Service::Create(relaxed_config, [](std::uint32_t) {
        return std::make_unique<SqlbMethod>();
      })->Run();
  std::printf(
      "\n%s-parity rerun on %zu worker threads: issued %llu, "
      "completed %llu, mean rt %.2f s, lock contention %llu\n",
      ParityModeName(relaxed.parity), relaxed.worker_threads,
      static_cast<unsigned long long>(parallel.run.queries_issued),
      static_cast<unsigned long long>(parallel.run.queries_completed),
      parallel.run.response_time.mean(),
      static_cast<unsigned long long>(parallel.consumer_lock_contention));
  return 0;
}
