// The computing-resources scenario of Section 1.1 (grid4all-style):
// consumers submit jobs, providers are compute nodes of heterogeneous
// capacity with their own interests, and the operator wants to know which
// allocation policy keeps both sides on the platform.
//
// Runs the same grid workload under four methods and prints a scoreboard:
// response time (performance), consumer/provider allocation satisfaction
// (who the method works for) and utilization balance.
//
//   $ ./build/examples/compute_grid

#include <cstdio>
#include <memory>

#include "common/reporting.h"
#include "experiments/experiments.h"
#include "runtime/mediation_system.h"

int main() {
  using namespace sqlb;
  using runtime::MediationSystem;

  runtime::SystemConfig config;
  config.population.num_consumers = 50;
  config.population.num_providers = 100;
  // Grid jobs: two classes, 300 and 600 units (~3 s / 6 s on a fast node).
  config.population.query_class_units = {300.0, 600.0};
  config.workload = runtime::WorkloadSpec::Constant(0.7);
  config.duration = 600.0;
  config.stats_warmup = 100.0;
  config.seed = 11;

  const experiments::MethodKind methods[] = {
      experiments::MethodKind::kSqlb,
      experiments::MethodKind::kCapacityBased,
      experiments::MethodKind::kMariposa,
      experiments::MethodKind::kKnBest,
  };

  TablePrinter table({"method", "mean RT(s)", "cons. allocsat",
                      "prov. allocsat", "ut fairness"});
  for (experiments::MethodKind kind : methods) {
    runtime::RunResult result = experiments::RunMethod(kind, config);

    const double cons_allocsat =
        result.series.Find(MediationSystem::kSeriesConsAllocSatMean)
            ->MeanOver(config.stats_warmup, config.duration);
    const double prov_allocsat =
        result.series.Find(MediationSystem::kSeriesProvAllocSatPrefMean)
            ->MeanOver(config.stats_warmup, config.duration);
    const double ut_fairness =
        result.series.Find(MediationSystem::kSeriesUtFair)
            ->MeanOver(config.stats_warmup, config.duration);

    table.AddRow({experiments::MethodName(kind),
                  FormatNumber(result.response_time.mean(), 3),
                  FormatNumber(cons_allocsat, 3),
                  FormatNumber(prov_allocsat, 3),
                  FormatNumber(ut_fairness, 3)});
  }

  std::printf("grid with 100 heterogeneous nodes, 50 tenants, 70%% load:\n\n"
              "%s\n", table.ToString().c_str());
  std::printf(
      "reading the scoreboard (Section 6's tradeoff):\n"
      "  - CapacityBased wins raw response time but is neutral-at-best to\n"
      "    everyone's interests (allocsat ~ 1): autonomous participants\n"
      "    have no reason to stay.\n"
      "  - SQLB pays a modest response-time premium to keep both allocsat\n"
      "    columns above 1.\n"
      "  - KnBest (the companion-work hybrid) sits between the two.\n");
  return 0;
}
