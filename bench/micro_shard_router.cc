// Microbenchmarks: the shard-routing hot path. The router sits in front of
// every mediation, so routing decisions/sec upper-bounds the sharded tier's
// intake rate the same way ns/query of the allocation methods bounds each
// shard's throughput (micro_allocation.cc).

#include <benchmark/benchmark.h>

#include "model/query.h"
#include "shard/shard_router.h"
#include "workload/population.h"

namespace sqlb::shard {
namespace {

RouterConfig MakeConfig(std::size_t shards, RoutingPolicy policy) {
  RouterConfig config;
  config.num_shards = shards;
  config.policy = policy;
  return config;
}

/// Routing decisions/sec for each policy at a given shard count. The
/// least-loaded variant runs on a warm, fresh load table (the steady-state
/// gossip regime).
void BenchmarkPolicy(benchmark::State& state, RoutingPolicy policy) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  ShardRouter router(MakeConfig(shards, policy));
  for (std::uint32_t s = 0; s < shards; ++s) {
    router.ReportLoad(s, 0.1 * static_cast<double>(s % 7), 50, 1.0);
  }

  Query query;
  QueryId id = 0;
  for (auto _ : state) {
    query.id = id;
    query.consumer = ConsumerId(static_cast<std::uint32_t>(id % 997));
    benchmark::DoNotOptimize(router.Route(query, 2.0));
    ++id;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RouteHash(benchmark::State& state) {
  BenchmarkPolicy(state, RoutingPolicy::kHash);
}
void BM_RouteLeastLoaded(benchmark::State& state) {
  BenchmarkPolicy(state, RoutingPolicy::kLeastLoaded);
}
void BM_RouteLocality(benchmark::State& state) {
  BenchmarkPolicy(state, RoutingPolicy::kLocality);
}

BENCHMARK(BM_RouteHash)->Arg(2)->Arg(8)->Arg(64);
BENCHMARK(BM_RouteLeastLoaded)->Arg(2)->Arg(8)->Arg(64);
BENCHMARK(BM_RouteLocality)->Arg(2)->Arg(8)->Arg(64);

/// Cost of carving the provider population into shards (paid once per
/// run/topology change, but it scales with fleet re-sizing frequency).
void BM_PartitionProviders(benchmark::State& state) {
  ShardRouter router(
      MakeConfig(static_cast<std::size_t>(state.range(0)),
                 RoutingPolicy::kHash));
  std::vector<ProviderProfile> providers(4096);
  for (std::size_t i = 0; i < providers.size(); ++i) {
    providers[i].id = ProviderId(static_cast<std::uint32_t>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.PartitionProviders(providers));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(providers.size()));
}
BENCHMARK(BM_PartitionProviders)->Arg(8)->Arg(64);

/// Load-report ingestion (the gossip sink's work).
void BM_ReportLoad(benchmark::State& state) {
  ShardRouter router(MakeConfig(64, RoutingPolicy::kLeastLoaded));
  std::uint32_t shard = 0;
  SimTime t = 0.0;
  for (auto _ : state) {
    t += 0.01;
    router.ReportLoad(shard, 0.5, 40, t);
    shard = (shard + 1) % 64;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReportLoad);

}  // namespace
}  // namespace sqlb::shard

#include "micro_main.h"
SQLB_MICRO_BENCH_MAIN("micro_shard_router")
