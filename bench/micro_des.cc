// Microbenchmarks: the discrete-event substrate — event scheduling
// throughput, the non-homogeneous Poisson generator, and the sliding-window
// utilization accounting.

#include <benchmark/benchmark.h>

#include "common/stats.h"
#include "des/arrival_process.h"
#include "des/simulator.h"

namespace sqlb::des {
namespace {

void BM_ScheduleAndRun(benchmark::State& state) {
  // Schedule/execute cycles with a queue depth of `range`.
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    state.ResumeTiming();
    for (int i = 0; i < depth; ++i) {
      sim.ScheduleAt(static_cast<SimTime>(i % 97), [](Simulator&) {});
    }
    sim.RunAll();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_ScheduleAndRun)->Arg(1024)->Arg(16384);

void BM_CancelHeavy(benchmark::State& state) {
  // Half the scheduled events get cancelled: tombstone-skipping path.
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    std::vector<EventId> ids;
    ids.reserve(8192);
    state.ResumeTiming();
    for (int i = 0; i < 8192; ++i) {
      ids.push_back(
          sim.ScheduleAt(static_cast<SimTime>(i % 61), [](Simulator&) {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) sim.Cancel(ids[i]);
    sim.RunAll();
    benchmark::DoNotOptimize(sim.executed_events());
  }
}
BENCHMARK(BM_CancelHeavy);

void BM_PoissonArrivals(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Rng rng(42);
    std::uint64_t count = 0;
    PoissonArrivalProcess process([](SimTime) { return 100.0; }, 100.0, rng);
    process.Start(sim, 0.0, 100.0, [&count](Simulator&) { ++count; });
    sim.RunAll();
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_PoissonArrivals);

void BM_WindowedSum(benchmark::State& state) {
  WindowedSum window(60.0);
  SimTime t = 0.0;
  for (auto _ : state) {
    t += 0.01;
    window.Add(t, 130.0);
    benchmark::DoNotOptimize(window.SumAt(t));
  }
}
BENCHMARK(BM_WindowedSum);

}  // namespace
}  // namespace sqlb::des

#include "micro_main.h"
SQLB_MICRO_BENCH_MAIN("micro_des")
