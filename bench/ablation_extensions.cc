// Extensions scoreboard: the companion-work KnBest hybrid ([17]) and the
// paper's stated future work, SQLB-Economic ("computing bids w.r.t.
// intentions", Section 7), against SQLB, the baselines and the two control
// methods (Random, RoundRobin).
//
// Expected: the controls are neutral to everyone (allocsat ~ 1) and blind
// to capacity; KnBest trades a little satisfaction for smoother QLB;
// SQLB-Economic keeps SQLB's satisfaction while shaving response time via
// the price discount on loaded providers.

#include "bench_common.h"
#include "runtime/mediation_system.h"

namespace sqlb {
namespace {

using runtime::MediationSystem;

void Main() {
  bench::PrintHeader("Extensions", "full method scoreboard at 70% load");

  runtime::SystemConfig config;
  config.population.num_consumers = 50;
  config.population.num_providers = 100;
  config.provider.window.capacity = 150;
  config.consumer.window.capacity = 100;
  config.workload = runtime::WorkloadSpec::Constant(0.7);
  config.duration = FastBenchMode() ? 600.0 : 1500.0;
  config.stats_warmup = config.duration * 0.2;
  config.seed = BenchSeed(42);

  const experiments::MethodKind methods[] = {
      experiments::MethodKind::kSqlb,
      experiments::MethodKind::kSqlbEconomic,
      experiments::MethodKind::kKnBest,
      experiments::MethodKind::kCapacityBased,
      experiments::MethodKind::kMariposa,
      experiments::MethodKind::kRandom,
      experiments::MethodKind::kRoundRobin,
  };

  TablePrinter table({"method", "mean RT(s)", "cons. allocsat",
                      "prov. allocsat", "ut fairness"});
  CsvWriter csv({"method", "mean_rt", "consumer_allocsat",
                 "provider_allocsat", "ut_fairness"});
  for (experiments::MethodKind kind : methods) {
    runtime::RunResult result = experiments::RunMethod(kind, config);
    const double cons =
        result.series.Find(MediationSystem::kSeriesConsAllocSatMean)
            ->MeanOver(config.stats_warmup, config.duration);
    const double prov =
        result.series.Find(MediationSystem::kSeriesProvAllocSatPrefMean)
            ->MeanOver(config.stats_warmup, config.duration);
    const double fairness =
        result.series.Find(MediationSystem::kSeriesUtFair)
            ->MeanOver(config.stats_warmup, config.duration);
    table.AddRow({experiments::MethodName(kind),
                  FormatNumber(result.response_time.mean(), 3),
                  FormatNumber(cons, 3), FormatNumber(prov, 3),
                  FormatNumber(fairness, 3)});
    csv.BeginRow();
    csv.AddCell(experiments::MethodName(kind));
    csv.AddCell(result.response_time.mean());
    csv.AddCell(cons);
    csv.AddCell(prov);
    csv.AddCell(fairness);
  }
  std::printf("%s\n", table.ToString().c_str());
  auto path =
      EnsureOutputPath(ResultsDirectory(), "ablation_extensions.csv");
  if (path.ok()) (void)csv.WriteFile(path.value());
}

}  // namespace
}  // namespace sqlb

int main() {
  sqlb::Main();
  return 0;
}
