// Reproduces Figure 5(b): mean response time vs workload when providers
// may leave by dissatisfaction, starvation, or overutilization
// (Section 6.3.2, second series).
//
// Paper shape: SQLB and Mariposa-like degrade by only ~1.4x w.r.t. the
// captive Figure 4(i), while Capacity based collapses (~3.5x): its
// dissatisfied providers leave, the survivors inherit the full workload and
// then leave by overutilization.

#include "bench_common.h"

namespace sqlb {
namespace {

void Main() {
  bench::PrintHeader(
      "Figure 5(b)",
      "response time vs workload; all provider departure causes enabled");

  runtime::SystemConfig base = experiments::PaperConfig(BenchSeed(42));
  if (FastBenchMode()) experiments::ApplyFastMode(base);

  experiments::SweepOptions options;
  options.duration = FastBenchMode() ? 1500.0 : 3000.0;
  options.warmup = options.duration * 0.2;
  options.repetitions = static_cast<std::size_t>(BenchRepetitions(1));
  options.seed = base.seed;
  options.departures = runtime::DepartureConfig::AllEnabled();
  options.departures.grace_period = options.duration * 0.2;
  options.departures.check_interval = 300.0;

  const auto sweeps = experiments::RunWorkloadSweep(
      base, options, experiments::PaperTrio());

  bench::PrintSweepTable("Mean response time (seconds) vs workload:",
                         sweeps,
                         &experiments::SweepPoint::mean_response_time);
  bench::WriteSweepCsv("fig5b_rt_all_departures.csv", sweeps,
                       &experiments::SweepPoint::mean_response_time);
}

}  // namespace
}  // namespace sqlb

int main() {
  sqlb::Main();
  return 0;
}
