// Serving-tier throughput: the wall-clock intake path against the
// DES-pumped baseline, same population and allocation method in every arm.
//
// Arms:
//   des-pump       The mono DES driver (simulated Poisson arrivals); wall
//                  time covers the whole Run(). This is the ceiling: no
//                  thread handoff, no queue hop.
//   serve-open-mK  Real producer threads flood the serving tier open-loop
//                  (retry on shed) with K mediator threads over the shard
//                  groups — the scaling ladder (K = 1, 2, 4). Every arm is
//                  recorded and replayed through the DES for the parity
//                  pin; K = 1 is the PR-9-identical single-thread tier.
//   serve-closed   Closed-loop producers (one outstanding query each):
//                  latency under no queueing pressure.
//   serve-rate     Rate-controlled open loop at a named offered load (half
//                  the measured m1 saturation qps): latency honesty — the
//                  p50/p99 here are "at X qps", not at saturation, and the
//                  CI gate requires zero shed at this load.
//   submit micro   Enqueue-side cost only (no mediator running): ns/query
//                  for per-query Submit vs SubmitMany in chunks — the
//                  batched path's one-reservation-per-run amortization.
//
// The JSON drop carries throughput_ratio (serve-open-m1 qps / des-pump
// qps, CI gates >= 0.8), replay_parity_exact (AND over the ladder, CI
// gates true), mediator_scaling_4t (m4 qps / m1 qps, CI gates >= 1.6 when
// hardware_threads >= 4), rate_shed (CI gates == 0), and the submit-many
// speedup.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/sqlb_method.h"
#include "runtime/serving_mediator.h"

namespace sqlb {
namespace {

using Clock = std::chrono::steady_clock;

runtime::SystemConfig Population() {
  runtime::SystemConfig config;
  config.population.num_consumers = 24;
  config.population.num_providers = 48;
  config.seed = BenchSeed(42);
  config.record_series = false;
  return config;
}

Service::MethodFactory Factory() {
  return [](std::uint32_t) { return std::make_unique<SqlbMethod>(); };
}

Config ServingBase(std::size_t mediator_threads) {
  Config config;
  config.mode = Mode::kServing;
  config.scenario() = Population();
  config.serving.shards = 4;
  config.serving.mediator_threads = mediator_threads;
  // Plenty of simulated provider capacity per wall second: the flood is
  // mediator-bound, not capacity-bound.
  config.serving.time_scale = 2000.0;
  config.serving.max_burst = 256;
  return config;
}

struct ArmResult {
  std::string name;
  std::uint64_t mediator_threads = 0;  // 0 = not a serving arm
  std::uint64_t queries = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  /// Enqueue->mediation wall latency in microseconds; <0 = not measured
  /// (the DES arm has no wall-clock intake).
  double p50_us = -1.0;
  double p99_us = -1.0;
  double p999_us = -1.0;
  /// Offered load of the rate-controlled arm; <0 elsewhere.
  double offered_qps = -1.0;
};

/// Arm 1: the DES driver pumps its own simulated arrivals; wall-time the
/// whole run and report simulated queries per wall second.
ArmResult RunDesPump() {
  runtime::SystemConfig config = Population();
  config.workload = runtime::WorkloadSpec::Constant(0.8);
  config.duration = FastBenchMode() ? 2000.0 : 8000.0;
  config.stats_warmup = config.duration * 0.1;

  const Clock::time_point begin = Clock::now();
  const runtime::RunResult result = bench::RunMonoService(config, Factory());
  const double wall =
      std::chrono::duration<double>(Clock::now() - begin).count();

  ArmResult arm;
  arm.name = "des-pump";
  arm.queries = result.queries_issued;
  arm.wall_seconds = wall;
  arm.qps = wall > 0.0 ? static_cast<double>(arm.queries) / wall : 0.0;
  return arm;
}

struct ServingArm {
  ArmResult arm;
  runtime::ServingReport report;
};

void FillArmFromReport(ServingArm* out, const std::string& name,
                       std::size_t mediator_threads) {
  out->arm.name = name;
  out->arm.mediator_threads = mediator_threads;
  out->arm.queries = out->report.served;
  out->arm.wall_seconds = out->report.wall_seconds;
  out->arm.qps = out->report.wall_seconds > 0.0
                     ? static_cast<double>(out->report.served) /
                           out->report.wall_seconds
                     : 0.0;
  out->arm.p50_us = out->report.intake_wall.Quantile(0.50) * 1e6;
  out->arm.p99_us = out->report.intake_wall.Quantile(0.99) * 1e6;
  out->arm.p999_us = out->report.intake_wall.Quantile(0.999) * 1e6;
}

/// The ladder and closed-loop arms: `producers` real threads drive the
/// serving tier through the sqlb::Service facade with `mediator_threads`
/// shard-group threads. Open loop floods (retrying on shed); closed loop
/// keeps one query outstanding per producer. The service is returned so
/// the caller can replay its recorded trace.
ServingArm RunServing(const std::string& name, std::size_t mediator_threads,
                      std::uint32_t producers, std::uint64_t per_producer,
                      bool closed_loop,
                      std::unique_ptr<Service>* service_out) {
  Config config = ServingBase(mediator_threads);
  std::unique_ptr<Service> service = Service::Create(config, Factory());
  std::vector<runtime::ServingProducer*> handles;
  for (std::uint32_t p = 0; p < producers; ++p) {
    handles.push_back(service->RegisterProducer());
  }
  const std::uint32_t consumers = static_cast<std::uint32_t>(
      config.scenario().population.num_consumers);
  const std::uint32_t classes = static_cast<std::uint32_t>(
      config.scenario().population.query_class_units.size());

  service->Start();
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      runtime::ServingProducer* producer = handles[p];
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        const std::uint32_t consumer =
            static_cast<std::uint32_t>((p + producers * i) % consumers);
        while (!service->Submit(producer, consumer,
                                static_cast<std::uint32_t>(i % classes))) {
          std::this_thread::yield();
        }
        if (closed_loop) producer->AwaitMediated(producer->submitted());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  service->Drain();

  ServingArm out;
  out.report = service->Stop();
  FillArmFromReport(&out, name, mediator_threads);
  if (service_out != nullptr) *service_out = std::move(service);
  return out;
}

/// The rate-controlled arm: producers pace submissions to an offered
/// arrival rate (sleep_until a per-producer schedule) instead of flooding,
/// and never retry — at the gated load the intake must absorb everything,
/// so any shed is reported and gated, not masked by a retry loop.
ServingArm RunRateControlled(double offered_qps, std::uint32_t producers,
                             double duration_seconds) {
  Config config = ServingBase(/*mediator_threads=*/1);
  std::unique_ptr<Service> service = Service::Create(config, Factory());
  std::vector<runtime::ServingProducer*> handles;
  for (std::uint32_t p = 0; p < producers; ++p) {
    handles.push_back(service->RegisterProducer());
  }
  const std::uint32_t consumers = static_cast<std::uint32_t>(
      config.scenario().population.num_consumers);
  const std::uint32_t classes = static_cast<std::uint32_t>(
      config.scenario().population.query_class_units.size());
  const double per_producer_rate = offered_qps / producers;
  const std::uint64_t per_producer = static_cast<std::uint64_t>(
      per_producer_rate * duration_seconds);

  service->Start();
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      runtime::ServingProducer* producer = handles[p];
      const Clock::time_point begin = Clock::now();
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        const Clock::time_point due =
            begin + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(i) / per_producer_rate));
        std::this_thread::sleep_until(due);
        const std::uint32_t consumer =
            static_cast<std::uint32_t>((p + producers * i) % consumers);
        service->Submit(producer, consumer,
                        static_cast<std::uint32_t>(i % classes));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  service->Drain();

  ServingArm out;
  out.report = service->Stop();
  FillArmFromReport(&out, "serve-rate", 1);
  out.arm.offered_qps = offered_qps;
  return out;
}

struct SubmitMicro {
  double submit_ns = 0.0;
  double submit_many_ns = 0.0;
  double speedup = 0.0;
};

/// Enqueue-side micro arm: no mediator thread runs (Start is never
/// called), so the timed loops measure exactly the producer-side cost —
/// reservation + node acquire + construct + publish — per query, for the
/// per-query and the chunked batched path.
SubmitMicro RunSubmitMicro() {
  const std::uint64_t n = FastBenchMode() ? 20'000 : 100'000;
  SubmitMicro micro;
  {
    runtime::ServingConfig serving;
    serving.shards = 1;
    serving.max_queued_per_shard = n + 1;
    serving.record_trace = false;
    runtime::ServingMediator mediator(Population(), serving, Factory());
    runtime::ServingProducer* producer = mediator.RegisterProducer();
    const Clock::time_point begin = Clock::now();
    for (std::uint64_t i = 0; i < n; ++i) {
      mediator.Submit(producer, static_cast<std::uint32_t>(i % 24),
                      static_cast<std::uint32_t>(i % 2));
    }
    micro.submit_ns =
        std::chrono::duration<double>(Clock::now() - begin).count() * 1e9 /
        static_cast<double>(n);
  }
  {
    runtime::ServingConfig serving;
    serving.shards = 1;
    serving.max_queued_per_shard = n + 1;
    serving.record_trace = false;
    runtime::ServingMediator mediator(Population(), serving, Factory());
    runtime::ServingProducer* producer = mediator.RegisterProducer();
    runtime::ServingRequest chunk[32];
    const Clock::time_point begin = Clock::now();
    for (std::uint64_t i = 0; i < n; i += 32) {
      for (std::uint64_t j = 0; j < 32; ++j) {
        chunk[j].consumer = static_cast<std::uint32_t>((i + j) % 24);
        chunk[j].class_index = static_cast<std::uint32_t>((i + j) % 2);
      }
      mediator.SubmitMany(producer, chunk, 32);
    }
    micro.submit_many_ns =
        std::chrono::duration<double>(Clock::now() - begin).count() * 1e9 /
        static_cast<double>(n);
  }
  micro.speedup = micro.submit_many_ns > 0.0
                      ? micro.submit_ns / micro.submit_many_ns
                      : 0.0;
  return micro;
}

/// Replays a recorded arm and returns whether the decision log matched
/// bit-for-bit (printing the first divergence when not).
bool CheckReplay(const char* name, const Service& service) {
  const runtime::ServingReplayResult replay = service.Replay();
  std::string diff;
  const bool parity =
      service.trace().decisions.IdenticalTo(replay.decisions, &diff);
  std::printf("replay oracle [%s]: %zu decisions, %s\n", name,
              service.trace().decisions.size(),
              parity ? "bit-identical to the live run" : diff.c_str());
  return parity;
}

bench::JsonObject ArmJson(const ArmResult& arm) {
  bench::JsonObject object;
  object.Add("name", arm.name)
      .Add("queries", arm.queries)
      .Add("wall_seconds", arm.wall_seconds)
      .Add("qps", arm.qps);
  if (arm.mediator_threads > 0) {
    object.Add("mediator_threads", arm.mediator_threads);
  }
  if (arm.p50_us >= 0.0) {
    object.Add("p50_us", arm.p50_us)
        .Add("p99_us", arm.p99_us)
        .Add("p999_us", arm.p999_us);
  }
  if (arm.offered_qps >= 0.0) {
    object.Add("offered_qps", arm.offered_qps);
  }
  return object;
}

std::string LatencyCell(double value_us) {
  return value_us < 0.0 ? std::string("-") : FormatNumber(value_us, 1);
}

void Main() {
  bench::PrintHeader("Serving throughput",
                     "wall-clock intake vs the DES-pumped baseline");

  const std::uint32_t kProducers = 4;
  const std::uint64_t kOpenPerProducer = FastBenchMode() ? 4000 : 20000;
  const std::uint64_t kClosedPerProducer = FastBenchMode() ? 1000 : 4000;
  const unsigned hardware_threads = std::thread::hardware_concurrency();

  const ArmResult des = RunDesPump();
  // The mediator ladder: same flood, 1/2/4 shard-group threads.
  std::unique_ptr<Service> recorded_m1;
  std::unique_ptr<Service> recorded_m2;
  std::unique_ptr<Service> recorded_m4;
  const ServingArm open_m1 =
      RunServing("serve-open-m1", 1, kProducers, kOpenPerProducer,
                 /*closed_loop=*/false, &recorded_m1);
  const ServingArm open_m2 =
      RunServing("serve-open-m2", 2, kProducers, kOpenPerProducer,
                 /*closed_loop=*/false, &recorded_m2);
  const ServingArm open_m4 =
      RunServing("serve-open-m4", 4, kProducers, kOpenPerProducer,
                 /*closed_loop=*/false, &recorded_m4);
  const ServingArm closed =
      RunServing("serve-closed", 1, kProducers, kClosedPerProducer,
                 /*closed_loop=*/true, nullptr);
  // Latency at a named offered load: half the measured m1 saturation qps.
  const double offered = open_m1.arm.qps * 0.5;
  const ServingArm rate = RunRateControlled(
      offered, /*producers=*/2, FastBenchMode() ? 1.0 : 2.0);
  const SubmitMicro micro = RunSubmitMicro();

  // The replay oracle over every ladder arm: each recorded decision stream
  // must come out of the per-group DES replay bit-for-bit.
  const bool parity = CheckReplay("m1", *recorded_m1) &
                      CheckReplay("m2", *recorded_m2) &
                      CheckReplay("m4", *recorded_m4);
  const double ratio = des.qps > 0.0 ? open_m1.arm.qps / des.qps : 0.0;
  const double scaling =
      open_m1.arm.qps > 0.0 ? open_m4.arm.qps / open_m1.arm.qps : 0.0;

  TablePrinter table({"arm", "queries", "wall(s)", "qps", "p50(us)",
                      "p99(us)", "p999(us)"});
  for (const ArmResult* arm :
       {&des, &open_m1.arm, &open_m2.arm, &open_m4.arm, &closed.arm,
        &rate.arm}) {
    table.AddRow({arm->name, std::to_string(arm->queries),
                  FormatNumber(arm->wall_seconds, 3),
                  FormatNumber(arm->qps, 0), LatencyCell(arm->p50_us),
                  LatencyCell(arm->p99_us), LatencyCell(arm->p999_us)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("throughput ratio (serve-open-m1 / des-pump): %.3f\n", ratio);
  std::printf(
      "mediator scaling (m4 / m1): %.2fx on %u hardware threads\n",
      scaling, hardware_threads);
  std::printf("rate arm: offered %.0f qps, shed %llu\n", offered,
              static_cast<unsigned long long>(rate.report.shed));
  std::printf(
      "enqueue micro: Submit %.0f ns/query, SubmitMany %.0f ns/query "
      "(%.2fx)\n",
      micro.submit_ns, micro.submit_many_ns, micro.speedup);
  std::printf("idle parking (m1 open arm): %llu parks, %llu spurious\n",
              static_cast<unsigned long long>(open_m1.report.idle_parks),
              static_cast<unsigned long long>(open_m1.report.spurious_wakes));

  bench::JsonArray arms;
  arms.Add(ArmJson(des))
      .Add(ArmJson(open_m1.arm))
      .Add(ArmJson(open_m2.arm))
      .Add(ArmJson(open_m4.arm))
      .Add(ArmJson(closed.arm))
      .Add(ArmJson(rate.arm));
  bench::JsonObject report;
  report.Add("bench", "serving_throughput")
      .Add("fast_mode", FastBenchMode())
      .Add("hardware_threads", static_cast<std::uint64_t>(hardware_threads))
      .AddRaw("arms", arms.ToString())
      .Add("throughput_ratio", ratio)
      .Add("mediator_scaling_4t", scaling)
      .Add("replay_parity_exact", parity)
      .Add("replay_decisions",
           static_cast<std::uint64_t>(recorded_m1->trace().decisions.size()))
      .Add("open_shed", open_m1.report.shed)
      .Add("closed_shed", closed.report.shed)
      .Add("rate_offered_qps", offered)
      .Add("rate_shed", rate.report.shed)
      .Add("idle_parks", open_m1.report.idle_parks)
      .Add("submit_ns", micro.submit_ns)
      .Add("submit_many_ns", micro.submit_many_ns)
      .Add("submit_many_speedup", micro.speedup);
  bench::WriteBenchJson("serving_throughput", report);
}

}  // namespace
}  // namespace sqlb

int main() {
  sqlb::Main();
  return 0;
}
