// Serving-tier throughput: the wall-clock intake path against the
// DES-pumped baseline, same population and allocation method in every arm.
//
// Arms:
//   des-pump      The mono DES driver (simulated Poisson arrivals); wall
//                 time covers the whole Run(). This is the ceiling: no
//                 thread handoff, no queue hop.
//   serve-open    Real producer threads flood the serving tier open-loop
//                 (retry on shed). Measures intake throughput plus the
//                 enqueue->mediation wall latency distribution; the run is
//                 recorded and replayed through the DES for the parity pin.
//   serve-closed  Closed-loop producers (one outstanding query each):
//                 latency under no queueing pressure.
//
// The JSON drop carries throughput_ratio (serve-open qps / des-pump qps,
// CI gates >= 0.8) and replay_parity_exact (CI gates true).

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/sqlb_method.h"
#include "runtime/serving_mediator.h"

namespace sqlb {
namespace {

using Clock = std::chrono::steady_clock;

runtime::SystemConfig Population() {
  runtime::SystemConfig config;
  config.population.num_consumers = 24;
  config.population.num_providers = 48;
  config.seed = BenchSeed(42);
  config.record_series = false;
  return config;
}

Service::MethodFactory Factory() {
  return [](std::uint32_t) { return std::make_unique<SqlbMethod>(); };
}

struct ArmResult {
  std::string name;
  std::uint64_t queries = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  /// Enqueue->mediation wall latency in microseconds; <0 = not measured
  /// (the DES arm has no wall-clock intake).
  double p50_us = -1.0;
  double p99_us = -1.0;
  double p999_us = -1.0;
};

/// Arm 1: the DES driver pumps its own simulated arrivals; wall-time the
/// whole run and report simulated queries per wall second.
ArmResult RunDesPump() {
  runtime::SystemConfig config = Population();
  config.workload = runtime::WorkloadSpec::Constant(0.8);
  config.duration = FastBenchMode() ? 2000.0 : 8000.0;
  config.stats_warmup = config.duration * 0.1;

  const Clock::time_point begin = Clock::now();
  const runtime::RunResult result = bench::RunMonoService(config, Factory());
  const double wall =
      std::chrono::duration<double>(Clock::now() - begin).count();

  ArmResult arm;
  arm.name = "des-pump";
  arm.queries = result.queries_issued;
  arm.wall_seconds = wall;
  arm.qps = wall > 0.0 ? static_cast<double>(arm.queries) / wall : 0.0;
  return arm;
}

struct ServingArm {
  ArmResult arm;
  runtime::ServingReport report;
};

/// Arms 2 and 3: `producers` real threads drive the serving tier through
/// the sqlb::Service facade. Open-loop floods (retrying on shed); closed
/// loop keeps one query outstanding per producer. The service is returned
/// so the caller can replay its recorded trace.
ServingArm RunServing(const std::string& name, std::uint32_t producers,
                      std::uint64_t per_producer, bool closed_loop,
                      std::unique_ptr<Service>* service_out) {
  Config config;
  config.mode = Mode::kServing;
  config.scenario() = Population();
  config.serving.shards = 2;
  // Plenty of simulated provider capacity per wall second: the flood is
  // mediator-bound, not capacity-bound.
  config.serving.time_scale = 2000.0;
  config.serving.max_burst = 256;

  std::unique_ptr<Service> service = Service::Create(config, Factory());
  std::vector<runtime::ServingProducer*> handles;
  for (std::uint32_t p = 0; p < producers; ++p) {
    handles.push_back(service->RegisterProducer());
  }
  const std::uint32_t consumers = static_cast<std::uint32_t>(
      config.scenario().population.num_consumers);
  const std::uint32_t classes = static_cast<std::uint32_t>(
      config.scenario().population.query_class_units.size());

  service->Start();
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      runtime::ServingProducer* producer = handles[p];
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        const std::uint32_t consumer =
            static_cast<std::uint32_t>((p + producers * i) % consumers);
        while (!service->Submit(producer, consumer,
                                static_cast<std::uint32_t>(i % classes))) {
          std::this_thread::yield();
        }
        if (closed_loop) producer->AwaitMediated(producer->submitted());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  service->Drain();

  ServingArm out;
  out.report = service->Stop();
  out.arm.name = name;
  out.arm.queries = out.report.served;
  out.arm.wall_seconds = out.report.wall_seconds;
  out.arm.qps = out.report.wall_seconds > 0.0
                    ? static_cast<double>(out.report.served) /
                          out.report.wall_seconds
                    : 0.0;
  out.arm.p50_us = out.report.intake_wall.Quantile(0.50) * 1e6;
  out.arm.p99_us = out.report.intake_wall.Quantile(0.99) * 1e6;
  out.arm.p999_us = out.report.intake_wall.Quantile(0.999) * 1e6;
  if (service_out != nullptr) *service_out = std::move(service);
  return out;
}

bench::JsonObject ArmJson(const ArmResult& arm) {
  bench::JsonObject object;
  object.Add("name", arm.name)
      .Add("queries", arm.queries)
      .Add("wall_seconds", arm.wall_seconds)
      .Add("qps", arm.qps);
  if (arm.p50_us >= 0.0) {
    object.Add("p50_us", arm.p50_us)
        .Add("p99_us", arm.p99_us)
        .Add("p999_us", arm.p999_us);
  }
  return object;
}

std::string LatencyCell(double value_us) {
  return value_us < 0.0 ? std::string("-") : FormatNumber(value_us, 1);
}

void Main() {
  bench::PrintHeader("Serving throughput",
                     "wall-clock intake vs the DES-pumped baseline");

  const std::uint32_t kProducers = 4;
  const std::uint64_t kOpenPerProducer = FastBenchMode() ? 4000 : 20000;
  const std::uint64_t kClosedPerProducer = FastBenchMode() ? 1000 : 4000;

  const ArmResult des = RunDesPump();
  std::unique_ptr<Service> recorded;
  const ServingArm open = RunServing("serve-open", kProducers,
                                     kOpenPerProducer, /*closed_loop=*/false,
                                     &recorded);
  const ServingArm closed = RunServing("serve-closed", kProducers,
                                       kClosedPerProducer,
                                       /*closed_loop=*/true, nullptr);

  // The replay oracle over the open-loop run: every recorded decision must
  // come out of the DES replay bit-for-bit.
  const runtime::ServingReplayResult replay = recorded->Replay();
  std::string diff;
  const bool parity =
      recorded->trace().decisions.IdenticalTo(replay.decisions, &diff);
  const double ratio = des.qps > 0.0 ? open.arm.qps / des.qps : 0.0;

  TablePrinter table({"arm", "queries", "wall(s)", "qps", "p50(us)",
                      "p99(us)", "p999(us)"});
  for (const ArmResult* arm : {&des, &open.arm, &closed.arm}) {
    table.AddRow({arm->name, std::to_string(arm->queries),
                  FormatNumber(arm->wall_seconds, 3),
                  FormatNumber(arm->qps, 0), LatencyCell(arm->p50_us),
                  LatencyCell(arm->p99_us), LatencyCell(arm->p999_us)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("throughput ratio (serve-open / des-pump): %.3f\n", ratio);
  std::printf("replay oracle: %zu decisions, %s\n",
              recorded->trace().decisions.size(),
              parity ? "bit-identical to the live run" : diff.c_str());

  bench::JsonArray arms;
  arms.Add(ArmJson(des)).Add(ArmJson(open.arm)).Add(ArmJson(closed.arm));
  bench::JsonObject report;
  report.Add("bench", "serving_throughput")
      .Add("fast_mode", FastBenchMode())
      .AddRaw("arms", arms.ToString())
      .Add("throughput_ratio", ratio)
      .Add("replay_parity_exact", parity)
      .Add("replay_decisions",
           static_cast<std::uint64_t>(recorded->trace().decisions.size()))
      .Add("open_shed", open.report.shed)
      .Add("closed_shed", closed.report.shed);
  bench::WriteBenchJson("serving_throughput", report);
}

}  // namespace
}  // namespace sqlb

int main() {
  sqlb::Main();
  return 0;
}
