// Ablation: Definition 8's satisfaction-driven preference/utilization
// self-balance vs its two degenerate corners (Section 5.2).
//
// Expected: preference-only providers chase interesting queries into
// overload (response times and overutilization exits rise); utilization-
// only providers behave like a plain load signal (preferences — and hence
// provider satisfaction — suffer); the self-balancing Definition 8 holds
// both ends.

#include "bench_common.h"
#include "core/sqlb_method.h"
#include "runtime/mediation_system.h"

namespace sqlb {
namespace {

using runtime::MediationSystem;

void Main() {
  bench::PrintHeader("Ablation: provider intention",
                     "Definition 8 vs preference-only vs utilization-only");

  runtime::SystemConfig base;
  base.population.num_consumers = 50;
  base.population.num_providers = 100;
  base.provider.window.capacity = 150;
  base.consumer.window.capacity = 100;
  base.workload = runtime::WorkloadSpec::Constant(0.8);
  base.duration = FastBenchMode() ? 600.0 : 1500.0;
  base.stats_warmup = base.duration * 0.2;
  base.seed = BenchSeed(42);

  struct Variant {
    const char* label;
    ProviderIntentionMode mode;
  };
  const Variant variants[] = {
      {"self-balancing (Def. 8)", ProviderIntentionMode::kSelfBalancing},
      {"preference-only", ProviderIntentionMode::kPreferenceOnly},
      {"utilization-only", ProviderIntentionMode::kUtilizationOnly},
  };

  TablePrinter table({"provider intention", "prov. sat (pref)",
                      "mean RT(s)", "ut fairness", "prov. exits(%)"});
  for (const Variant& variant : variants) {
    runtime::SystemConfig config = base;
    config.provider.intention.mode = variant.mode;
    config.departures = runtime::DepartureConfig::AllEnabled();
    config.departures.grace_period = base.duration * 0.25;
    config.departures.check_interval = 300.0;

    runtime::RunResult result = bench::RunMonoService(
        config, [](std::uint32_t) { return std::make_unique<SqlbMethod>(); });
    const double sat =
        result.series.Find(MediationSystem::kSeriesProvSatPrefMean)
            ->MeanOver(config.stats_warmup, config.duration);
    const double fairness =
        result.series.Find(MediationSystem::kSeriesUtFair)
            ->MeanOver(config.stats_warmup, config.duration);
    table.AddRow({variant.label, FormatNumber(sat, 3),
                  FormatNumber(result.response_time.mean(), 3),
                  FormatNumber(fairness, 3),
                  FormatNumber(result.ProviderDeparturePercent(), 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace sqlb

int main() {
  sqlb::Main();
  return 0;
}
