// Microbenchmarks: the per-query cost of each allocation method as a
// function of the candidate-set size N. The mediator runs this code once
// per incoming query, so ns/query here bounds the sustainable system
// throughput.

#include <benchmark/benchmark.h>

#include "core/sqlb_method.h"
#include "experiments/experiments.h"
#include "methods/capacity_based.h"
#include "methods/mariposa.h"
#include "model/query.h"

namespace sqlb {
namespace {

AllocationRequest MakeRequest(Query* query, std::size_t n_candidates,
                              std::uint64_t seed) {
  Rng rng(seed);
  AllocationRequest request;
  request.query = query;
  request.consumer_satisfaction = rng.NextDouble();
  request.candidates.reserve(n_candidates);
  for (std::size_t i = 0; i < n_candidates; ++i) {
    CandidateProvider c;
    c.id = ProviderId(static_cast<std::uint32_t>(i));
    c.consumer_intention = rng.Uniform(-1.0, 1.0);
    c.provider_intention = rng.Uniform(-2.0, 1.0);
    c.provider_satisfaction = rng.NextDouble();
    c.utilization = rng.Uniform(0.0, 1.5);
    c.capacity = rng.Uniform(14.0, 100.0);
    c.backlog_seconds = rng.Uniform(0.0, 30.0);
    c.bid_price = rng.Uniform(0.05, 1.05);
    c.estimated_delay = c.backlog_seconds + 1.4;
    request.candidates.push_back(c);
  }
  return request;
}

template <typename MethodT>
void BenchmarkMethod(benchmark::State& state) {
  Query query;
  query.id = 1;
  query.consumer = ConsumerId(0);
  query.n = 1;
  query.units = 130.0;
  auto request = MakeRequest(&query, static_cast<std::size_t>(state.range(0)),
                             /*seed=*/7);
  MethodT method;
  for (auto _ : state) {
    benchmark::DoNotOptimize(method.Allocate(request));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(state.range(0)));
}

void BM_SqlbAllocate(benchmark::State& state) {
  BenchmarkMethod<SqlbMethod>(state);
}
void BM_CapacityAllocate(benchmark::State& state) {
  BenchmarkMethod<CapacityBasedMethod>(state);
}
void BM_MariposaAllocate(benchmark::State& state) {
  BenchmarkMethod<MariposaMethod>(state);
}

BENCHMARK(BM_SqlbAllocate)->Arg(64)->Arg(256)->Arg(400)->Arg(1024);
BENCHMARK(BM_CapacityAllocate)->Arg(64)->Arg(256)->Arg(400)->Arg(1024);
BENCHMARK(BM_MariposaAllocate)->Arg(64)->Arg(256)->Arg(400)->Arg(1024);

// Selecting several providers (q.n > 1) exercises the partial sort.
void BM_SqlbAllocateMulti(benchmark::State& state) {
  Query query;
  query.id = 1;
  query.consumer = ConsumerId(0);
  query.n = static_cast<std::uint32_t>(state.range(0));
  query.units = 130.0;
  auto request = MakeRequest(&query, 400, /*seed=*/11);
  SqlbMethod method;
  for (auto _ : state) {
    benchmark::DoNotOptimize(method.Allocate(request));
  }
}
BENCHMARK(BM_SqlbAllocateMulti)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace sqlb

#include "micro_main.h"
SQLB_MICRO_BENCH_MAIN("micro_allocation")
