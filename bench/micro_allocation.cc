// Microbenchmarks: the per-query cost of each allocation method as a
// function of the candidate-set size N. The mediator runs this code once
// per incoming query, so ns/query here bounds the sustainable system
// throughput.
//
// The BM_CoreAllocate{Cached,Uncached} ladder measures the full
// MediationCore::Allocate path (matchmaking, gather, scoring, dispatch,
// completion accounting) over a live provider population of N members,
// with the event-driven characterization cache on vs off — the per-|P_q|
// decomposition of the cache win that the end-to-end scenario benches
// cannot separate. CI gates cached >= 1.3x uncached at N = 1024.

#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "core/sqlb_method.h"
#include "experiments/experiments.h"
#include "methods/capacity_based.h"
#include "methods/mariposa.h"
#include "model/query.h"
#include "runtime/mediation_core.h"

namespace sqlb {
namespace {

AllocationRequest MakeRequest(Query* query, std::size_t n_candidates,
                              std::uint64_t seed) {
  Rng rng(seed);
  AllocationRequest request;
  request.query = query;
  request.consumer_satisfaction = rng.NextDouble();
  request.candidates.reserve(n_candidates);
  for (std::size_t i = 0; i < n_candidates; ++i) {
    CandidateProvider c;
    c.id = ProviderId(static_cast<std::uint32_t>(i));
    c.consumer_intention = rng.Uniform(-1.0, 1.0);
    c.provider_intention = rng.Uniform(-2.0, 1.0);
    c.provider_satisfaction = rng.NextDouble();
    c.utilization = rng.Uniform(0.0, 1.5);
    c.capacity = rng.Uniform(14.0, 100.0);
    c.backlog_seconds = rng.Uniform(0.0, 30.0);
    c.bid_price = rng.Uniform(0.05, 1.05);
    c.estimated_delay = c.backlog_seconds + 1.4;
    request.candidates.push_back(c);
  }
  return request;
}

template <typename MethodT>
void BenchmarkMethod(benchmark::State& state) {
  Query query;
  query.id = 1;
  query.consumer = ConsumerId(0);
  query.n = 1;
  query.units = 130.0;
  auto request = MakeRequest(&query, static_cast<std::size_t>(state.range(0)),
                             /*seed=*/7);
  MethodT method;
  for (auto _ : state) {
    benchmark::DoNotOptimize(method.Allocate(request));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(state.range(0)));
}

void BM_SqlbAllocate(benchmark::State& state) {
  BenchmarkMethod<SqlbMethod>(state);
}
void BM_CapacityAllocate(benchmark::State& state) {
  BenchmarkMethod<CapacityBasedMethod>(state);
}
void BM_MariposaAllocate(benchmark::State& state) {
  BenchmarkMethod<MariposaMethod>(state);
}

BENCHMARK(BM_SqlbAllocate)->Arg(64)->Arg(256)->Arg(400)->Arg(1024);
BENCHMARK(BM_CapacityAllocate)->Arg(64)->Arg(256)->Arg(400)->Arg(1024);
BENCHMARK(BM_MariposaAllocate)->Arg(64)->Arg(256)->Arg(400)->Arg(1024);

// --- MediationCore ladder: cached vs uncached characterization -------------

/// One live mediation pipeline over N member providers: the Table 2
/// population profile scaled to N, a steady synthetic arrival stream, and
/// the full Allocate path per iteration (service completions drain on the
/// same simulator as time advances).
struct CoreHarness {
  CoreHarness(std::size_t n_providers, bool cache_enabled)
      : config(MakeConfig(n_providers, cache_enabled)),
        population(config.population, config.seed),
        reputation(config.population.num_providers, 0.0, 0.1),
        response_window(500) {
    for (const ProviderProfile& profile : population.providers()) {
      providers.emplace_back(profile, config.provider);
      members.push_back(profile.id.index());
    }
    for (std::size_t c = 0; c < population.num_consumers(); ++c) {
      consumers.emplace_back(ConsumerId(static_cast<std::uint32_t>(c)),
                             config.consumer);
    }
    runtime::MediationCore::Shared shared;
    shared.config = &config;
    shared.population = &population;
    shared.providers = &providers;
    shared.consumers = &consumers;
    shared.reputation = &reputation;
    shared.result = &result;
    shared.response_window = &response_window;
    core.emplace(shared, &method, members);
  }

  static runtime::SystemConfig MakeConfig(std::size_t n_providers,
                                          bool cache_enabled) {
    runtime::SystemConfig config = experiments::PaperConfig(/*seed=*/42);
    config.population.num_providers = n_providers;
    config.population.num_consumers = 64;
    config.record_series = false;
    config.characterization_cache = cache_enabled;
    return config;
  }

  /// Issues one arrival dt seconds after the previous one and mediates it.
  void Step(double dt) {
    now += dt;
    sim.RunUntil(now);  // drain service completions up to the arrival
    Query query;
    query.id = next_id++;
    query.consumer = ConsumerId(static_cast<std::uint32_t>(
        next_id % consumers.size()));
    query.n = config.query_n;
    query.class_index = static_cast<std::uint32_t>(
        next_id % population.num_query_classes());
    query.units = population.QueryUnits(query.class_index);
    query.issue_time = now;
    benchmark::DoNotOptimize(core->Allocate(sim, query));
  }

  runtime::SystemConfig config;
  Population population;
  std::vector<runtime::ProviderAgent> providers;
  std::vector<runtime::ConsumerAgent> consumers;
  std::vector<std::uint32_t> members;
  runtime::ReputationRegistry reputation;
  runtime::RunResult result;
  WindowedMean response_window;
  SqlbMethod method;
  des::Simulator sim;
  std::optional<runtime::MediationCore> core;
  SimTime now = 0.0;
  std::uint64_t next_id = 0;
};

void BenchmarkCoreAllocate(benchmark::State& state, bool cache_enabled) {
  const auto n = static_cast<std::size_t>(state.range(0));
  CoreHarness harness(n, cache_enabled);
  // Arrival cadence ~40% of aggregate capacity: the queues stay shallow
  // (completions drain between arrivals) while the utilization windows and
  // characterization state see steady churn — the mediation-bound regime
  // where per-query gather cost is the bottleneck.
  const double rate = 0.4 * harness.population.total_capacity() /
                      harness.population.mean_query_units();
  const double dt = 1.0 / rate;
  // Warm the windows and the cache so the measured region is steady-state.
  for (int i = 0; i < 256; ++i) harness.Step(dt);
  for (auto _ : state) {
    harness.Step(dt);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CoreAllocateCached(benchmark::State& state) {
  BenchmarkCoreAllocate(state, /*cache_enabled=*/true);
}
void BM_CoreAllocateUncached(benchmark::State& state) {
  BenchmarkCoreAllocate(state, /*cache_enabled=*/false);
}

BENCHMARK(BM_CoreAllocateCached)->Arg(32)->Arg(256)->Arg(1024);
BENCHMARK(BM_CoreAllocateUncached)->Arg(32)->Arg(256)->Arg(1024);

// Selecting several providers (q.n > 1) exercises the partial sort.
void BM_SqlbAllocateMulti(benchmark::State& state) {
  Query query;
  query.id = 1;
  query.consumer = ConsumerId(0);
  query.n = static_cast<std::uint32_t>(state.range(0));
  query.units = 130.0;
  auto request = MakeRequest(&query, 400, /*seed=*/11);
  SqlbMethod method;
  for (auto _ : state) {
    benchmark::DoNotOptimize(method.Allocate(request));
  }
}
BENCHMARK(BM_SqlbAllocateMulti)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace sqlb

#include "micro_main.h"
SQLB_MICRO_BENCH_MAIN("micro_allocation")
