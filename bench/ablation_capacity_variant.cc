// Ablation: the two readings of "highest available capacity (i.e. the
// least utilized)" (Section 6.2.1) differ under heterogeneous capacity:
//
//   - least-utilized (our default): equalizes Ut across providers; every
//     provider gets work proportional to its capacity.
//   - max-available-capacity: greedy on absolute spare rate; faster
//     responses, but low-capacity providers are never the maximum and
//     starve at moderate load.

#include "bench_common.h"
#include "methods/capacity_based.h"
#include "runtime/mediation_system.h"

namespace sqlb {
namespace {

using runtime::MediationSystem;

void Main() {
  bench::PrintHeader("Ablation: Capacity based variant",
                     "least-utilized vs max-available-capacity");

  runtime::SystemConfig base;
  base.population.num_consumers = 50;
  base.population.num_providers = 100;
  base.provider.window.capacity = 150;
  base.consumer.window.capacity = 100;
  base.workload = runtime::WorkloadSpec::Constant(0.6);
  base.duration = FastBenchMode() ? 600.0 : 1500.0;
  base.stats_warmup = base.duration * 0.2;
  base.seed = BenchSeed(42);

  TablePrinter table({"variant", "mean RT(s)", "ut mean", "ut fairness",
                      "starvation exits(%)"});
  for (CapacityRanking ranking : {CapacityRanking::kLeastUtilized,
                                  CapacityRanking::kMaxAvailableCapacity}) {
    runtime::SystemConfig config = base;
    config.departures = runtime::DepartureConfig::AllEnabled();
    config.departures.grace_period = base.duration * 0.25;
    config.departures.check_interval = 300.0;

    runtime::RunResult result = bench::RunMonoService(config, [ranking](std::uint32_t) {
      return std::make_unique<CapacityBasedMethod>(ranking);
    });
    const double ut = result.series.Find(MediationSystem::kSeriesUtMean)
                          ->MeanOver(config.stats_warmup, config.duration);
    const double fairness =
        result.series.Find(MediationSystem::kSeriesUtFair)
            ->MeanOver(config.stats_warmup, config.duration);
    const double starved =
        100.0 *
        static_cast<double>(result.tally.ByReason(
            runtime::DepartureReason::kStarvation)) /
        static_cast<double>(result.initial_providers);
    table.AddRow({result.method_name,
                  FormatNumber(result.response_time.mean(), 3),
                  FormatNumber(ut, 3), FormatNumber(fairness, 3),
                  FormatNumber(starved, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace sqlb

int main() {
  sqlb::Main();
  return 0;
}
