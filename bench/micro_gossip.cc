// Microbenchmarks: gossip dissemination topologies (shard/gossip_topology.h)
// over the real message runtime (msg/network.h). One "round" is every live
// shard getting its load report to the router: all-to-all floods Theta(M^2)
// messages through the network, the k-ary hierarchical tree relays
// O(M log M), direct is the M-message legacy baseline. Items processed =
// messages, so the items/sec column is dissemination throughput and the
// per-iteration wall time is the kernel + network cost of one round — the
// concrete gap the hierarchical topology exists to close at fleet scale
// (M = 256 all-to-all is 65536 sends per round against the tree's ~1000).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "des/simulator.h"
#include "msg/network.h"
#include "shard/gossip_topology.h"

namespace sqlb::shard {
namespace {

constexpr std::uint32_t kLoadReportKind = 1;
constexpr std::size_t kFanout = 4;

/// A shard node that relays hierarchically: reports addressed to it hop one
/// level up the rank tree (rank 0 forwards to the sink). Mirrors the
/// ShardedMediationSystem::RelayLoadReport path without the mediation tier.
struct RelayNode : msg::Node {
  std::size_t rank = 0;
  bool forward_enabled = true;  // false = mesh peer, absorbs deliveries
  NodeId sink;
  const std::vector<NodeId>* addresses = nullptr;
  std::uint64_t* message_count = nullptr;

  void OnMessage(msg::Network& network, const msg::Message& message) override {
    if (!forward_enabled) return;
    msg::Message forward;
    forward.from = message.to;
    forward.to = rank == 0 ? sink
                           : (*addresses)[GossipParentRank(rank, kFanout)];
    forward.kind = kLoadReportKind;
    forward.correlation = message.correlation;
    forward.payload = message.payload;
    ++*message_count;
    network.Send(std::move(forward));
  }
};

/// The router's gossip sink: counts arrivals, forwards nothing.
struct SinkNode : msg::Node {
  std::uint64_t received = 0;
  void OnMessage(msg::Network&, const msg::Message&) override { ++received; }
};

struct GossipFixture {
  des::Simulator sim;
  msg::Network network;
  std::vector<RelayNode> shards;
  SinkNode sink;
  std::vector<NodeId> addresses;
  NodeId sink_address;
  std::uint64_t messages = 0;

  explicit GossipFixture(std::size_t m)
      : network(sim, msg::LatencyModel{0.005, 0.0}, Rng(7)) {
    shards.resize(m);
    for (std::size_t r = 0; r < m; ++r) {
      addresses.push_back(network.Register(&shards[r]));
    }
    sink_address = network.Register(&sink);
    for (std::size_t r = 0; r < m; ++r) {
      shards[r].rank = r;
      shards[r].sink = sink_address;
      shards[r].addresses = &addresses;
      shards[r].message_count = &messages;
    }
  }

  void SendReport(std::size_t from, NodeId to) {
    msg::Message message;
    message.from = addresses[from];
    message.to = to;
    message.kind = kLoadReportKind;
    message.correlation = from;
    ++messages;
    network.Send(std::move(message));
  }
};

/// One all-to-all round: M reports, each flooded to every peer + the sink.
void BM_GossipAllToAll(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  GossipFixture fx(m);
  // Peers must not re-forward in the mesh: deliveries terminate at arrival.
  for (auto& shard : fx.shards) shard.forward_enabled = false;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    for (std::size_t s = 0; s < m; ++s) {
      for (std::size_t t = 0; t < m; ++t) {
        fx.SendReport(s, t == s ? fx.sink_address : fx.addresses[t]);
      }
    }
    fx.sim.RunAll();
    ++rounds;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      rounds * AllToAllMessagesPerRound(m)));
  state.counters["msgs_per_round"] =
      static_cast<double>(AllToAllMessagesPerRound(m));
}

/// One hierarchical round: each shard sends one hop up the k-ary tree;
/// relays forward at delivery time until the root hands off to the sink.
void BM_GossipHierarchical(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  GossipFixture fx(m);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    fx.messages = 0;
    for (std::size_t r = 0; r < m; ++r) {
      fx.SendReport(r, r == 0 ? fx.sink_address
                              : fx.addresses[GossipParentRank(r, kFanout)]);
    }
    fx.sim.RunAll();  // drains every relay hop
    benchmark::DoNotOptimize(fx.messages);
    ++rounds;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      rounds * HierarchicalMessagesPerRound(m, kFanout)));
  state.counters["msgs_per_round"] =
      static_cast<double>(HierarchicalMessagesPerRound(m, kFanout));
}

/// The legacy direct baseline: M reports straight to the sink.
void BM_GossipDirect(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  GossipFixture fx(m);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    for (std::size_t r = 0; r < m; ++r) {
      fx.SendReport(r, fx.sink_address);
    }
    fx.sim.RunAll();
    ++rounds;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds * m));
  state.counters["msgs_per_round"] = static_cast<double>(m);
}

BENCHMARK(BM_GossipDirect)->Arg(8)->Arg(64)->Arg(256);
BENCHMARK(BM_GossipHierarchical)->Arg(8)->Arg(64)->Arg(256);
BENCHMARK(BM_GossipAllToAll)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
}  // namespace sqlb::shard

#include "micro_main.h"
SQLB_MICRO_BENCH_MAIN("micro_gossip")
