// Reproduces Table 1 and the Section 1.1 motivating discussion: eWine's
// call for international-shipping proposals, five candidate providers,
// q.n = 2 desired answers.
//
// The point of the example: a pure QLB method picks the most available
// providers (p1, p2) although p1 is distrusted by eWine and p2 does not
// want the query; the only mutually agreeable provider (p5) is overloaded.
// SQLB's score resolves the dilemma by trading both sides' intentions.

#include "bench_common.h"
#include "core/sqlb_method.h"
#include "methods/capacity_based.h"
#include "model/query.h"

namespace sqlb {
namespace {

struct ExampleProvider {
  const char* name;
  double provider_intention;  // "Prov.'s Int." (binary in the paper)
  double consumer_intention;  // "Cons.'s Int."
  double available_capacity;  // "Avail. Cap."
};

void Main() {
  bench::PrintHeader("Table 1", "eWine's motivating example (Section 1.1)");

  const ExampleProvider table1[] = {
      {"p1", 1.0, -1.0, 0.85},
      {"p2", -1.0, 1.0, 0.57},
      {"p3", 1.0, -1.0, 0.22},
      {"p4", -1.0, 1.0, 0.15},
      {"p5", 1.0, 1.0, 0.0},
  };

  Query query;
  query.id = 1;
  query.consumer = ConsumerId(0);
  query.n = 2;  // eWine wants proposals from the two best providers
  query.units = 130.0;

  AllocationRequest request;
  request.query = &query;
  request.consumer_satisfaction = 0.5;
  for (std::uint32_t i = 0; i < 5; ++i) {
    CandidateProvider c;
    c.id = ProviderId(i + 1);
    c.provider_intention = table1[i].provider_intention;
    c.consumer_intention = table1[i].consumer_intention;
    c.provider_satisfaction = 0.5;
    c.capacity = 100.0;
    c.utilization = 1.0 - table1[i].available_capacity;
    request.candidates.push_back(c);
  }

  TablePrinter input({"provider", "prov. int.", "cons. int.",
                      "avail. cap."});
  for (const auto& p : table1) {
    input.AddRow({p.name, FormatNumber(p.provider_intention),
                  FormatNumber(p.consumer_intention),
                  FormatNumber(p.available_capacity)});
  }
  std::printf("Table 1 input:\n%s\n", input.ToString().c_str());

  auto report = [&](const char* label, const AllocationDecision& decision) {
    std::printf("%s selects:", label);
    for (std::size_t idx : decision.selected) {
      std::printf(" %s (score %.3f)", table1[idx].name,
                  decision.scores[idx]);
    }
    std::printf("\n");
  };

  CapacityBasedMethod capacity;
  report("Capacity based", capacity.Allocate(request));
  std::printf("  -> the pure QLB pick: ignores that eWine distrusts p1 and "
              "that p2 does not want the query.\n");

  SqlbMethod sqlb;
  report("SQLB          ", sqlb.Allocate(request));
  std::printf("  -> p5, the only mutually agreeable provider, ranks first; "
              "the rest are refusals ranked by\n"
              "     least mutual reluctance. Allocating to an unwilling "
              "provider risks its departure\n"
              "     (Section 1.1); SQLB accepts p5's load instead and the "
              "adaptive omega (Eq. 6) rebalances\n"
              "     as satisfactions drift.\n\n");
}

}  // namespace
}  // namespace sqlb

int main() {
  sqlb::Main();
  return 0;
}
