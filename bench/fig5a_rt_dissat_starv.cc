// Reproduces Figure 5(a): mean response time vs workload when providers
// may leave by dissatisfaction or starvation (Section 6.3.2, first series
// of autonomy experiments).
//
// Paper shape: SQLB significantly outperforms both baselines at every
// workload; Capacity based beats Mariposa-like (which overutilizes its
// favourite providers and pays for it in response time).

#include "bench_common.h"

namespace sqlb {
namespace {

void Main() {
  bench::PrintHeader(
      "Figure 5(a)",
      "response time vs workload; departures: dissatisfaction + starvation");

  runtime::SystemConfig base = experiments::PaperConfig(BenchSeed(42));
  if (FastBenchMode()) experiments::ApplyFastMode(base);

  experiments::SweepOptions options;
  options.duration = FastBenchMode() ? 1500.0 : 3000.0;
  options.warmup = options.duration * 0.2;
  options.repetitions = static_cast<std::size_t>(BenchRepetitions(1));
  options.seed = base.seed;
  options.departures = runtime::DepartureConfig::DissatisfactionAndStarvation();
  options.departures.grace_period = options.duration * 0.2;
  options.departures.check_interval = 300.0;

  const auto sweeps = experiments::RunWorkloadSweep(
      base, options, experiments::PaperTrio());

  bench::PrintSweepTable("Mean response time (seconds) vs workload:",
                         sweeps,
                         &experiments::SweepPoint::mean_response_time);
  bench::WriteSweepCsv("fig5a_rt_dissat_starv.csv", sweeps,
                       &experiments::SweepPoint::mean_response_time);

  bench::PrintSweepTable(
      "Provider departures (% of initial providers) in the same runs:",
      sweeps, &experiments::SweepPoint::provider_departure_percent, 3);
  bench::WriteSweepCsv(
      "fig5a_provider_departures.csv", sweeps,
      &experiments::SweepPoint::provider_departure_percent);
}

}  // namespace
}  // namespace sqlb

int main() {
  sqlb::Main();
  return 0;
}
