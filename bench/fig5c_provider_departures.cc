// Reproduces Figure 5(c): the percentage of provider departures vs
// workload with every departure cause enabled (Section 6.3.2).
//
// Paper shape: Capacity based and Mariposa-like lose almost all providers
// at every workload above the lightest; SQLB loses ~28% on average and
// mainly keeps the high-interest, high-adaptation, high-capacity providers.

#include "bench_common.h"

namespace sqlb {
namespace {

void Main() {
  bench::PrintHeader("Figure 5(c)",
                     "provider departures vs workload; all causes enabled");

  runtime::SystemConfig base = experiments::PaperConfig(BenchSeed(42));
  if (FastBenchMode()) experiments::ApplyFastMode(base);

  experiments::SweepOptions options;
  options.duration = FastBenchMode() ? 1500.0 : 3000.0;
  options.warmup = options.duration * 0.2;
  options.repetitions = static_cast<std::size_t>(BenchRepetitions(1));
  options.seed = base.seed;
  options.departures = runtime::DepartureConfig::AllEnabled();
  options.departures.grace_period = options.duration * 0.2;
  options.departures.check_interval = 300.0;

  const auto sweeps = experiments::RunWorkloadSweep(
      base, options, experiments::PaperTrio());

  bench::PrintSweepTable(
      "Provider departures (% of initial providers) vs workload:", sweeps,
      &experiments::SweepPoint::provider_departure_percent, 3);
  bench::WriteSweepCsv("fig5c_provider_departures.csv", sweeps,
                       &experiments::SweepPoint::provider_departure_percent);

  double sqlb_avg = 0.0;
  for (const auto& point : sweeps.front().points) {
    sqlb_avg += point.provider_departure_percent;
  }
  sqlb_avg /= static_cast<double>(sweeps.front().points.size());
  std::printf("SQLB average departures: %.1f%% (paper: ~28%%)\n\n",
              sqlb_avg);
}

}  // namespace
}  // namespace sqlb

int main() {
  sqlb::Main();
  return 0;
}
