// Microbenchmarks: the characterization-model primitives. Every proposed
// query touches one ProviderWindow per candidate (400 Record calls per
// query at paper scale), so these are the hottest non-allocation paths.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/intention.h"
#include "core/scoring.h"
#include "model/metrics.h"
#include "model/windows.h"

namespace sqlb {
namespace {

void BM_ProviderWindowRecord(benchmark::State& state) {
  WindowConfig config;
  config.capacity = static_cast<std::size_t>(state.range(0));
  ProviderWindow window(config);
  Rng rng(3);
  for (auto _ : state) {
    window.Record(rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0),
                  rng.Bernoulli(0.01));
    benchmark::DoNotOptimize(
        window.Satisfaction(ProviderWindow::Channel::kIntention));
  }
}
BENCHMARK(BM_ProviderWindowRecord)->Arg(500)->Arg(2000);

void BM_ConsumerWindowRecord(benchmark::State& state) {
  WindowConfig config;
  config.capacity = 200;
  ConsumerWindow window(config);
  Rng rng(5);
  for (auto _ : state) {
    window.Record(rng.NextDouble(), rng.NextDouble());
    benchmark::DoNotOptimize(window.AllocationSatisfactionValue());
  }
}
BENCHMARK(BM_ConsumerWindowRecord);

void BM_ProviderIntention(benchmark::State& state) {
  ProviderIntentionParams params;
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ProviderIntention(rng.Uniform(-1.0, 1.0), rng.Uniform(0.0, 2.0),
                          rng.NextDouble(), params));
  }
}
BENCHMARK(BM_ProviderIntention);

void BM_ProviderScore(benchmark::State& state) {
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ProviderScore(rng.Uniform(-2.0, 1.0), rng.Uniform(-1.0, 1.0),
                      rng.NextDouble()));
  }
}
BENCHMARK(BM_ProviderScore);

void BM_MetricsSummarize(benchmark::State& state) {
  Rng rng(11);
  std::vector<double> values;
  for (int i = 0; i < state.range(0); ++i) {
    values.push_back(rng.NextDouble());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Summarize(values));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MetricsSummarize)->Arg(400)->Arg(4000);

}  // namespace
}  // namespace sqlb

#include "micro_main.h"
SQLB_MICRO_BENCH_MAIN("micro_model")
