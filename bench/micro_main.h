#ifndef SQLB_BENCH_MICRO_MAIN_H_
#define SQLB_BENCH_MICRO_MAIN_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/env_config.h"
#include "common/reporting.h"

/// \file
/// Shared main() for the Google-Benchmark micro benches: console output as
/// usual, plus a machine-readable BENCH_<id>.json (Google Benchmark's JSON
/// schema) under the results directory, so the micro benches leave the same
/// perf trajectory as the scenario benches. Each micro_*.cc ends with
/// SQLB_MICRO_BENCH_MAIN("<id>") instead of linking benchmark_main.

namespace sqlb::bench {

inline int RunMicroBenchmarks(const std::string& id, int argc, char** argv) {
  // Route the library's own file reporter at BENCH_<id>.json by injecting
  // the output flags ahead of the user's arguments (later flags win, so an
  // explicit --benchmark_out on the command line still overrides).
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  auto path = EnsureOutputPath(ResultsDirectory(), "BENCH_" + id + ".json");
  if (path.ok()) {
    out_flag = "--benchmark_out=" + path.value();
    args.insert(args.begin() + 1, const_cast<char*>(format_flag.c_str()));
    args.insert(args.begin() + 1, const_cast<char*>(out_flag.c_str()));
  } else {
    std::fprintf(stderr, "results dir unavailable: JSON report skipped\n");
  }

  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(effective_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  if (path.ok()) std::printf("wrote %s\n", path.value().c_str());
  return 0;
}

}  // namespace sqlb::bench

#define SQLB_MICRO_BENCH_MAIN(id)                            \
  int main(int argc, char** argv) {                          \
    return sqlb::bench::RunMicroBenchmarks(id, argc, argv);  \
  }

#endif  // SQLB_BENCH_MICRO_MAIN_H_
