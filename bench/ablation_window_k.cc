// Ablation: sensitivity of the characterization model to the window size k
// (the paper fixes k = 200 for consumers / 500 for providers and notes
// k "may be different for each participant depending on its storage
// capacity, or strategy", Section 3).
//
// Expected: small k makes satisfaction noisy (departure decisions become
// trigger-happy); very large k makes it sluggish (stale opinions — the
// adaptive omega reacts late). The paper's choice sits in the flat middle.

#include "bench_common.h"
#include "core/sqlb_method.h"
#include "runtime/mediation_system.h"

namespace sqlb {
namespace {

using runtime::MediationSystem;

void Main() {
  bench::PrintHeader("Ablation: window size k",
                     "provider window in {50, 150, 500, 2000}");

  runtime::SystemConfig base;
  base.population.num_consumers = 50;
  base.population.num_providers = 100;
  base.consumer.window.capacity = 100;
  base.workload = runtime::WorkloadSpec::Constant(0.8);
  base.duration = FastBenchMode() ? 600.0 : 1500.0;
  base.stats_warmup = base.duration * 0.2;
  base.seed = BenchSeed(42);

  TablePrinter table({"provider k", "prov. sat (pref)", "prov. allocsat",
                      "prov. exits(%)", "mean RT(s)"});
  for (std::size_t k : {50u, 150u, 500u, 2000u}) {
    runtime::SystemConfig config = base;
    config.provider.window.capacity = k;
    config.departures = runtime::DepartureConfig::AllEnabled();
    config.departures.grace_period = base.duration * 0.25;
    config.departures.check_interval = 300.0;

    runtime::RunResult result = bench::RunMonoService(
        config, [](std::uint32_t) { return std::make_unique<SqlbMethod>(); });
    const double sat =
        result.series.Find(MediationSystem::kSeriesProvSatPrefMean)
            ->MeanOver(config.stats_warmup, config.duration);
    const double allocsat =
        result.series.Find(MediationSystem::kSeriesProvAllocSatPrefMean)
            ->MeanOver(config.stats_warmup, config.duration);
    table.AddRow({std::to_string(k), FormatNumber(sat, 3),
                  FormatNumber(allocsat, 3),
                  FormatNumber(result.ProviderDeparturePercent(), 3),
                  FormatNumber(result.response_time.mean(), 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace sqlb

int main() {
  sqlb::Main();
  return 0;
}
