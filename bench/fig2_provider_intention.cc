// Reproduces Figure 2: the provider intention surface pi_p(q) as a
// function of (preference, utilization) at satisfaction 0.5 (Section 5.2).
//
// Paper shape: intentions are positive only in the quadrant where the
// provider wants the query (preference > 0) and is not overutilized
// (Ut < 1); elsewhere the surface dives, reaching ~-2.5 at
// (preference -1, utilization 2).

#include "bench_common.h"
#include "core/intention.h"

namespace sqlb {
namespace {

void Main() {
  bench::PrintHeader("Figure 2",
                     "provider intention vs (preference, utilization) at "
                     "satisfaction 0.5");

  const ProviderIntentionParams params;  // Definition 8, epsilon = 1
  const double satisfaction = 0.5;

  // Console: a coarse grid; CSV: a fine one for replotting.
  TablePrinter table({"pref\\Ut", "0", "0.25", "0.5", "0.75", "1", "1.5",
                      "2"});
  const double uts[] = {0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0};
  for (double pref = -1.0; pref <= 1.0 + 1e-9; pref += 0.25) {
    std::vector<std::string> row{FormatNumber(pref)};
    for (double ut : uts) {
      row.push_back(
          FormatNumber(ProviderIntention(pref, ut, satisfaction, params), 4));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());

  CsvWriter csv({"preference", "utilization", "intention"});
  for (double pref = -1.0; pref <= 1.0 + 1e-9; pref += 0.05) {
    for (double ut = 0.0; ut <= 2.0 + 1e-9; ut += 0.05) {
      csv.BeginRow();
      csv.AddCell(pref);
      csv.AddCell(ut);
      csv.AddCell(ProviderIntention(pref, ut, satisfaction, params));
    }
  }
  auto path =
      EnsureOutputPath(ResultsDirectory(), "fig2_provider_intention.csv");
  if (path.ok() && csv.WriteFile(path.value()).ok()) {
    std::printf("wrote %s\n", path.value().c_str());
  }

  // The surface's corners, as sanity anchors.
  std::printf("\nanchors: pi(1, 0) = %.3f (max), pi(-1, 2) = %.3f "
              "(paper plots ~-2.5)\n\n",
              ProviderIntention(1.0, 0.0, satisfaction, params),
              ProviderIntention(-1.0, 2.0, satisfaction, params));
}

}  // namespace
}  // namespace sqlb

int main() {
  sqlb::Main();
  return 0;
}
