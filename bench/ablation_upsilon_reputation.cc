// Ablation: Definition 7's upsilon — how much consumers trust their own
// preferences vs the providers' reputation (Section 5.1). The simulation
// setup pins upsilon = 1 (preference-only); this sweep turns on the
// reputation substrate (EWMA over delivery feedback) and walks upsilon
// from 0 (reputation only) to 1.
//
// Expected: reputation-heavy consumers (small upsilon) converge towards
// fast, reliable providers — response time improves — at the cost of
// preference alignment (consumer satisfaction on raw preferences drops).

#include "bench_common.h"
#include "core/sqlb_method.h"
#include "runtime/mediation_system.h"

namespace sqlb {
namespace {

using runtime::MediationSystem;

void Main() {
  bench::PrintHeader("Ablation: upsilon (preference vs reputation)",
                     "Definition 7 with live reputation feedback");

  runtime::SystemConfig base;
  base.population.num_consumers = 50;
  base.population.num_providers = 100;
  base.provider.window.capacity = 150;
  base.consumer.window.capacity = 100;
  base.workload = runtime::WorkloadSpec::Constant(0.7);
  base.duration = FastBenchMode() ? 600.0 : 1500.0;
  base.stats_warmup = base.duration * 0.2;
  base.seed = BenchSeed(42);
  base.reputation_feedback = true;

  TablePrinter table({"upsilon", "mean RT(s)", "cons. sat", "cons. allocsat"});
  for (double upsilon : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    runtime::SystemConfig config = base;
    config.consumer.intention.mode = ConsumerIntentionMode::kFormula;
    config.consumer.intention.upsilon = upsilon;

    runtime::RunResult result = bench::RunMonoService(
        config, [](std::uint32_t) { return std::make_unique<SqlbMethod>(); });
    const double sat =
        result.series.Find(MediationSystem::kSeriesConsSatMean)
            ->MeanOver(config.stats_warmup, config.duration);
    const double allocsat =
        result.series.Find(MediationSystem::kSeriesConsAllocSatMean)
            ->MeanOver(config.stats_warmup, config.duration);
    table.AddRow({FormatNumber(upsilon),
                  FormatNumber(result.response_time.mean(), 3),
                  FormatNumber(sat, 3), FormatNumber(allocsat, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("(upsilon = 1 with kFormula still applies Definition 7's "
              "negative branch to negative\npreferences; the paper's "
              "simulation uses the kPreferenceOnly short-circuit "
              "instead.)\n\n");
}

}  // namespace
}  // namespace sqlb

int main() {
  sqlb::Main();
  return 0;
}
