#ifndef SQLB_BENCH_BENCH_COMMON_H_
#define SQLB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/env_config.h"
#include "common/reporting.h"
#include "des/time_series.h"
#include "experiments/experiments.h"

/// \file
/// Shared plumbing for the figure/table reproduction binaries: consistent
/// headers, sampled-series console tables, and CSV drops under the results
/// directory (SQLB_RESULTS, default "results/").

namespace sqlb::bench {

/// Prints the standard bench banner.
inline void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("=== %s — %s ===\n", id.c_str(), title.c_str());
  if (FastBenchMode()) {
    std::printf("(SQLB_FAST=1: scaled-down population/duration — shapes "
                "hold, absolute values shift)\n");
  }
  std::printf("\n");
}

/// One Figure-4-style console table: a time column plus one column per
/// method, sampled every `stride`-th probe so stdout stays readable. The
/// full-resolution series go to CSV.
inline void PrintSeriesTable(
    const std::string& caption, const char* series_key,
    const std::vector<experiments::QualityRampResult>& runs,
    std::size_t stride) {
  std::printf("%s\n", caption.c_str());
  std::vector<std::string> header{"time(s)"};
  for (const auto& run : runs) {
    header.push_back(experiments::MethodName(run.method));
  }
  TablePrinter table(header);

  const des::TimeSeries* reference =
      runs.empty() ? nullptr : runs.front().run.series.Find(series_key);
  if (reference == nullptr) {
    std::printf("  (series %s missing)\n\n", series_key);
    return;
  }
  for (std::size_t i = 0; i < reference->samples.size(); i += stride) {
    const SimTime t = reference->samples[i].first;
    std::vector<std::string> row{FormatNumber(t)};
    for (const auto& run : runs) {
      const auto* series = run.run.series.Find(series_key);
      row.push_back(series == nullptr
                        ? std::string("-")
                        : FormatNumber(series->ValueAt(t), 4));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
}

/// Writes one CSV per run: <results>/<file_prefix>_<method>.csv with every
/// collected series of that run.
inline void WriteRunCsvs(
    const std::string& file_prefix,
    const std::vector<experiments::QualityRampResult>& runs) {
  for (const auto& run : runs) {
    std::string method = experiments::MethodName(run.method);
    for (char& c : method) {
      if (c == ' ' || c == '(' || c == ')' || c == '-') c = '_';
    }
    auto path = EnsureOutputPath(ResultsDirectory(),
                                 file_prefix + "_" + method + ".csv");
    if (!path.ok()) {
      std::fprintf(stderr, "cannot create results dir: %s\n",
                   path.status().ToString().c_str());
      return;
    }
    const Status status =
        run.run.series.ToCsv().WriteFile(path.value());
    if (!status.ok()) {
      std::fprintf(stderr, "CSV write failed: %s\n",
                   status.ToString().c_str());
    } else {
      std::printf("wrote %s\n", path.value().c_str());
    }
  }
  std::printf("\n");
}

/// Writes a sweep-result CSV: workload column + one column per method.
inline void WriteSweepCsv(
    const std::string& filename,
    const std::vector<experiments::SweepResult>& sweeps,
    double experiments::SweepPoint::*field) {
  if (sweeps.empty()) return;
  std::vector<std::string> header{"workload_percent"};
  for (const auto& sweep : sweeps) {
    header.push_back(experiments::MethodName(sweep.method));
  }
  CsvWriter csv(header);
  for (std::size_t i = 0; i < sweeps.front().points.size(); ++i) {
    csv.BeginRow();
    csv.AddCell(sweeps.front().points[i].workload_fraction * 100.0);
    for (const auto& sweep : sweeps) {
      csv.AddCell(sweep.points[i].*field);
    }
  }
  auto path = EnsureOutputPath(ResultsDirectory(), filename);
  if (path.ok() && csv.WriteFile(path.value()).ok()) {
    std::printf("wrote %s\n\n", path.value().c_str());
  }
}

/// Prints a sweep as a console table.
inline void PrintSweepTable(
    const std::string& caption,
    const std::vector<experiments::SweepResult>& sweeps,
    double experiments::SweepPoint::*field, int precision = 4) {
  std::printf("%s\n", caption.c_str());
  std::vector<std::string> header{"workload(%)"};
  for (const auto& sweep : sweeps) {
    header.push_back(experiments::MethodName(sweep.method));
  }
  TablePrinter table(header);
  if (sweeps.empty()) return;
  for (std::size_t i = 0; i < sweeps.front().points.size(); ++i) {
    std::vector<std::string> row{
        FormatNumber(sweeps.front().points[i].workload_fraction * 100.0)};
    for (const auto& sweep : sweeps) {
      row.push_back(FormatNumber(sweep.points[i].*field, precision));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace sqlb::bench

#endif  // SQLB_BENCH_BENCH_COMMON_H_
