#ifndef SQLB_BENCH_BENCH_COMMON_H_
#define SQLB_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/env_config.h"
#include "common/reporting.h"
#include "des/time_series.h"
#include "experiments/experiments.h"
#include "sqlb/service.h"

/// \file
/// Shared plumbing for the figure/table reproduction binaries: consistent
/// headers, sampled-series console tables, CSV drops, and machine-readable
/// JSON bench reports (BENCH_<name>.json) under the results directory
/// (SQLB_RESULTS, default "results/"). The JSON drops are the repo's perf
/// trajectory: CI and humans diff them across commits.

namespace sqlb::bench {

/// Runs one mono-mediator scenario through the sqlb::Service facade (the
/// benches' standard entry point since the serving-tier API unification).
inline runtime::RunResult RunMonoService(const runtime::SystemConfig& config,
                                         Service::MethodFactory factory) {
  Config service_config;
  service_config.mode = Mode::kMono;
  service_config.scenario() = config;
  return Service::Create(service_config, std::move(factory))->Run().run;
}

// ---------------------------------------------------------------------------
// Minimal JSON emission (no external deps): enough for flat bench reports —
// objects, arrays, numbers, strings, booleans.
// ---------------------------------------------------------------------------

inline std::string JsonEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

inline std::string JsonNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Accumulates "key": value pairs and renders one JSON object. Nested
/// objects/arrays go in pre-rendered via AddRaw.
class JsonObject {
 public:
  JsonObject& Add(const std::string& key, const std::string& value) {
    return AddRaw(key, "\"" + JsonEscape(value) + "\"");
  }
  JsonObject& Add(const std::string& key, const char* value) {
    return Add(key, std::string(value));
  }
  JsonObject& Add(const std::string& key, double value) {
    return AddRaw(key, JsonNumber(value));
  }
  JsonObject& Add(const std::string& key, std::uint64_t value) {
    return AddRaw(key, std::to_string(value));
  }
  JsonObject& Add(const std::string& key, bool value) {
    return AddRaw(key, value ? "true" : "false");
  }
  JsonObject& AddRaw(const std::string& key, const std::string& rendered) {
    fields_.push_back("\"" + JsonEscape(key) + "\": " + rendered);
    return *this;
  }

  std::string ToString() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out += (i == 0 ? "" : ", ") + fields_[i];
    }
    return out + "}";
  }

 private:
  std::vector<std::string> fields_;
};

/// Accumulates pre-rendered elements into a JSON array.
class JsonArray {
 public:
  JsonArray& AddRaw(const std::string& rendered) {
    elements_.push_back(rendered);
    return *this;
  }
  JsonArray& Add(const JsonObject& object) { return AddRaw(object.ToString()); }

  std::string ToString() const {
    std::string out = "[";
    for (std::size_t i = 0; i < elements_.size(); ++i) {
      out += (i == 0 ? "" : ", ") + elements_[i];
    }
    return out + "]";
  }

 private:
  std::vector<std::string> elements_;
};

/// Writes `report` as BENCH_<name>.json under the results directory and
/// announces the path on stdout. Returns false (after a stderr note) when
/// the results directory cannot be created or written.
inline bool WriteBenchJson(const std::string& name, const JsonObject& report) {
  auto path = EnsureOutputPath(ResultsDirectory(), "BENCH_" + name + ".json");
  if (!path.ok()) {
    std::fprintf(stderr, "cannot create results dir: %s\n",
                 path.status().ToString().c_str());
    return false;
  }
  std::ofstream out(path.value());
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.value().c_str());
    return false;
  }
  out << report.ToString() << "\n";
  std::printf("wrote %s\n", path.value().c_str());
  return true;
}

/// Prints the standard bench banner.
inline void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("=== %s — %s ===\n", id.c_str(), title.c_str());
  if (FastBenchMode()) {
    std::printf("(SQLB_FAST=1: scaled-down population/duration — shapes "
                "hold, absolute values shift)\n");
  }
  std::printf("\n");
}

/// One Figure-4-style console table: a time column plus one column per
/// method, sampled every `stride`-th probe so stdout stays readable. The
/// full-resolution series go to CSV.
inline void PrintSeriesTable(
    const std::string& caption, const char* series_key,
    const std::vector<experiments::QualityRampResult>& runs,
    std::size_t stride) {
  std::printf("%s\n", caption.c_str());
  std::vector<std::string> header{"time(s)"};
  for (const auto& run : runs) {
    header.push_back(experiments::MethodName(run.method));
  }
  TablePrinter table(header);

  const des::TimeSeries* reference =
      runs.empty() ? nullptr : runs.front().run.series.Find(series_key);
  if (reference == nullptr) {
    std::printf("  (series %s missing)\n\n", series_key);
    return;
  }
  for (std::size_t i = 0; i < reference->samples.size(); i += stride) {
    const SimTime t = reference->samples[i].first;
    std::vector<std::string> row{FormatNumber(t)};
    for (const auto& run : runs) {
      const auto* series = run.run.series.Find(series_key);
      row.push_back(series == nullptr
                        ? std::string("-")
                        : FormatNumber(series->ValueAt(t), 4));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
}

/// Writes one CSV per run: <results>/<file_prefix>_<method>.csv with every
/// collected series of that run.
inline void WriteRunCsvs(
    const std::string& file_prefix,
    const std::vector<experiments::QualityRampResult>& runs) {
  for (const auto& run : runs) {
    std::string method = experiments::MethodName(run.method);
    for (char& c : method) {
      if (c == ' ' || c == '(' || c == ')' || c == '-') c = '_';
    }
    auto path = EnsureOutputPath(ResultsDirectory(),
                                 file_prefix + "_" + method + ".csv");
    if (!path.ok()) {
      std::fprintf(stderr, "cannot create results dir: %s\n",
                   path.status().ToString().c_str());
      return;
    }
    const Status status =
        run.run.series.ToCsv().WriteFile(path.value());
    if (!status.ok()) {
      std::fprintf(stderr, "CSV write failed: %s\n",
                   status.ToString().c_str());
    } else {
      std::printf("wrote %s\n", path.value().c_str());
    }
  }
  std::printf("\n");
}

/// Writes a sweep-result CSV: workload column + one column per method.
inline void WriteSweepCsv(
    const std::string& filename,
    const std::vector<experiments::SweepResult>& sweeps,
    double experiments::SweepPoint::*field) {
  if (sweeps.empty()) return;
  std::vector<std::string> header{"workload_percent"};
  for (const auto& sweep : sweeps) {
    header.push_back(experiments::MethodName(sweep.method));
  }
  CsvWriter csv(header);
  for (std::size_t i = 0; i < sweeps.front().points.size(); ++i) {
    csv.BeginRow();
    csv.AddCell(sweeps.front().points[i].workload_fraction * 100.0);
    for (const auto& sweep : sweeps) {
      csv.AddCell(sweep.points[i].*field);
    }
  }
  auto path = EnsureOutputPath(ResultsDirectory(), filename);
  if (path.ok() && csv.WriteFile(path.value()).ok()) {
    std::printf("wrote %s\n\n", path.value().c_str());
  }
}

/// Prints a sweep as a console table.
inline void PrintSweepTable(
    const std::string& caption,
    const std::vector<experiments::SweepResult>& sweeps,
    double experiments::SweepPoint::*field, int precision = 4) {
  std::printf("%s\n", caption.c_str());
  std::vector<std::string> header{"workload(%)"};
  for (const auto& sweep : sweeps) {
    header.push_back(experiments::MethodName(sweep.method));
  }
  TablePrinter table(header);
  if (sweeps.empty()) return;
  for (std::size_t i = 0; i < sweeps.front().points.size(); ++i) {
    std::vector<std::string> row{
        FormatNumber(sweeps.front().points[i].workload_fraction * 100.0)};
    for (const auto& sweep : sweeps) {
      row.push_back(FormatNumber(sweep.points[i].*field, precision));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace sqlb::bench

#endif  // SQLB_BENCH_BENCH_COMMON_H_
