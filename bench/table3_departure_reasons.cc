// Reproduces Table 3: providers' departure reasons at a workload of 80% of
// the total system capacity, broken down by consumer-interest class,
// adaptation class ("Providers' Adequation") and capacity class
// (Section 6.3.2).
//
// Paper shapes: under Capacity based, dissatisfaction dominates (52% in
// the paper) and takes mostly medium/high-adaptation providers; under
// Mariposa-like, overutilization dominates (65%) and takes the most
// adapted/highest-interest providers; SQLB loses far fewer overall and its
// dissatisfaction departures concentrate on low-capacity providers.

#include "bench_common.h"
#include "runtime/departures.h"

namespace sqlb {
namespace {

void PrintBreakdown(const experiments::DepartureBreakdown& breakdown) {
  std::printf("--- %s (consumer departures: %.1f%%) ---\n",
              experiments::MethodName(breakdown.method).c_str(),
              breakdown.consumer_departure_percent);
  TablePrinter table({"reason", "dimension", "low", "medium", "high",
                      "total"});
  const char* dimensions[3] = {"Cons. interest to prov.",
                               "Providers' adequation (adaptation)",
                               "Providers' capacity"};
  for (std::size_t r = 0; r < runtime::kNumDepartureReasons; ++r) {
    const auto reason = static_cast<runtime::DepartureReason>(r);
    for (std::size_t d = 0; d < 3; ++d) {
      table.AddRow({d == 0 ? runtime::DepartureReasonName(reason) : "",
                    dimensions[d],
                    FormatNumber(breakdown.percent[r][d][0], 3) + "%",
                    FormatNumber(breakdown.percent[r][d][1], 3) + "%",
                    FormatNumber(breakdown.percent[r][d][2], 3) + "%",
                    FormatNumber(breakdown.total[r], 3) + "%"});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

void Main() {
  bench::PrintHeader("Table 3",
                     "provider departure reasons at 80% workload");

  runtime::SystemConfig base = experiments::PaperConfig(BenchSeed(42));
  if (FastBenchMode()) experiments::ApplyFastMode(base);

  experiments::BreakdownOptions options;
  options.workload = 0.8;
  options.duration = FastBenchMode() ? 1500.0 : 3000.0;
  options.repetitions = static_cast<std::size_t>(BenchRepetitions(1));
  options.seed = base.seed;

  const auto breakdowns = experiments::RunDepartureBreakdown(
      base, options, experiments::PaperTrio());

  CsvWriter csv({"method", "reason", "dimension", "low", "medium", "high",
                 "total"});
  const char* dimensions[3] = {"interest", "adaptation", "capacity"};
  for (const auto& breakdown : breakdowns) {
    PrintBreakdown(breakdown);
    for (std::size_t r = 0; r < runtime::kNumDepartureReasons; ++r) {
      for (std::size_t d = 0; d < 3; ++d) {
        csv.BeginRow();
        csv.AddCell(experiments::MethodName(breakdown.method));
        csv.AddCell(std::string(runtime::DepartureReasonName(
            static_cast<runtime::DepartureReason>(r))));
        csv.AddCell(std::string(dimensions[d]));
        csv.AddCell(breakdown.percent[r][d][0]);
        csv.AddCell(breakdown.percent[r][d][1]);
        csv.AddCell(breakdown.percent[r][d][2]);
        csv.AddCell(breakdown.total[r]);
      }
    }
  }
  auto path = EnsureOutputPath(ResultsDirectory(),
                               "table3_departure_reasons.csv");
  if (path.ok() && csv.WriteFile(path.value()).ok()) {
    std::printf("wrote %s\n\n", path.value().c_str());
  }
}

}  // namespace
}  // namespace sqlb

int main() {
  sqlb::Main();
  return 0;
}
