// Reproduces Figure 4(i): mean response time vs workload with captive
// participants (Section 6.3.1).
//
// Paper shape: Capacity based is best at every workload; SQLB costs a
// factor of ~1.4 on average (the price of honouring intentions); the
// Mariposa-like method costs a factor of ~3 (it overutilizes the most
// adapted providers).

#include "bench_common.h"

namespace sqlb {
namespace {

void Main() {
  bench::PrintHeader("Figure 4(i)", "response time vs workload, captive");

  runtime::SystemConfig base = experiments::PaperConfig(BenchSeed(42));
  if (FastBenchMode()) experiments::ApplyFastMode(base);

  experiments::SweepOptions options;
  options.duration = FastBenchMode() ? 1200.0 : 2500.0;
  options.warmup = options.duration * 0.2;
  options.repetitions = static_cast<std::size_t>(BenchRepetitions(1));
  options.seed = base.seed;
  // Captive: the default DepartureConfig keeps everyone in the system.

  const auto sweeps = experiments::RunWorkloadSweep(
      base, options, experiments::PaperTrio());

  bench::PrintSweepTable("Mean response time (seconds) vs workload:",
                         sweeps,
                         &experiments::SweepPoint::mean_response_time);
  bench::WriteSweepCsv("fig4i_response_time_captive.csv", sweeps,
                       &experiments::SweepPoint::mean_response_time);

  // The tail the mean hides (latency histogram, ~11% bucket resolution):
  // the paper reports means only, but the intention-honouring cost shows up
  // disproportionately in the tail quantiles.
  bench::PrintSweepTable("p50 response time (seconds) vs workload:", sweeps,
                         &experiments::SweepPoint::rt_p50);
  bench::PrintSweepTable("p99 response time (seconds) vs workload:", sweeps,
                         &experiments::SweepPoint::rt_p99);
  bench::PrintSweepTable("p999 response time (seconds) vs workload:", sweeps,
                         &experiments::SweepPoint::rt_p999);
  bench::WriteSweepCsv("fig4i_response_time_captive_p99.csv", sweeps,
                       &experiments::SweepPoint::rt_p99);

  // The paper's headline factors, relative to Capacity based.
  const auto& capacity = sweeps.back();  // PaperTrio order: SQLB, MP, CAP
  TablePrinter factors({"workload(%)", "SQLB/Capacity", "Mariposa/Capacity"});
  double sqlb_factor_sum = 0.0, mariposa_factor_sum = 0.0;
  for (std::size_t i = 0; i < capacity.points.size(); ++i) {
    const double cap_rt = capacity.points[i].mean_response_time;
    const double sqlb_rt = sweeps[0].points[i].mean_response_time;
    const double mp_rt = sweeps[1].points[i].mean_response_time;
    const double fs = cap_rt > 0 ? sqlb_rt / cap_rt : 0.0;
    const double fm = cap_rt > 0 ? mp_rt / cap_rt : 0.0;
    sqlb_factor_sum += fs;
    mariposa_factor_sum += fm;
    factors.AddRow(
        {FormatNumber(capacity.points[i].workload_fraction * 100.0),
         FormatNumber(fs, 3), FormatNumber(fm, 3)});
  }
  std::printf("Degradation factors (paper: ~1.4 for SQLB, ~3 for "
              "Mariposa-like on average):\n%s",
              factors.ToString().c_str());
  const double n = static_cast<double>(capacity.points.size());
  std::printf("average factors: SQLB %.2f, Mariposa-like %.2f\n\n",
              sqlb_factor_sum / n, mariposa_factor_sum / n);
}

}  // namespace
}  // namespace sqlb

int main() {
  sqlb::Main();
  return 0;
}
