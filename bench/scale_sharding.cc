// Scaling the mediation tier, two ways:
//
//  1. Algorithmic (PR 1): 1 vs 2 vs 4 vs 8 shards on the single-threaded
//     kernel. Each shard mediates over ~N/M candidates, so the per-query
//     Algorithm-1 cost shrinks with M and allocation throughput rises.
//  2. Wall-clock (PR 2): the same 8-shard tier under epoch-stepped
//     parallel execution (per-shard lanes on a worker pool, deterministic
//     sink merge at gossip/probe barriers) with batched Algorithm-1 intake
//     (one matchmaking pass + one provider characterization snapshot + one
//     scoring pass per arrival burst).
//  3. Relaxed parity (PR 3): least-loaded routing — which strict
//     parallel mode rejects — on worker threads, with per-consumer
//     sequence locks and bounded aggregate divergence from the serial
//     least-loaded run (counters conserved exactly; response time within
//     a small tolerance).
//  4. Churn (PR 4): the same 8-shard strict tier under a provider
//     join/leave schedule that guts one shard mid-run, with runtime ring
//     re-partitioning on — the churn arm must stay bit-identical between
//     serial and parallel execution and must not regress allocation
//     throughput vs the no-churn arm by more than the CI gate (20%).
//  5. Chaos (PR 5): random mid-run shard kills with crash-consistent
//     snapshots, survivor adoption of the dead shard's providers, and
//     re-issue of the queries the crash lost. The zero-lost-completions
//     invariant — completed + infeasible + reissued == issued, exactly —
//     is pinned here under the kill schedule, the serial and 4-thread
//     chaos rows must stay bit-identical, and throughput vs the calm
//     8-serial arm is the CI gate (>= 0.70).
//  6. Million-agent scale (this PR): pooled SoA agent state
//     (runtime/agent_store.h + mem/) against the eager heap layout,
//     hierarchical gossip (shard/gossip_topology.h) against the direct
//     baseline at M = 64, and a 1M-provider 64-shard pooled arm. Pins:
//     the pooled twin of 8-serial is bit-identical; the topology-aware
//     parallel twin is bit-identical; per-provider resident bytes drop
//     >= 4x under the pool (and >= 4x again at 1M, where almost every
//     provider is idle and the lazy chunks never materialize); the
//     hierarchical 64-shard arm's wire cost stays under the
//     rounds x M ceil(log2 M) budget the closed form promises.
//
// What to look for:
//   - M = 1 (sharded) reproduces the mono-mediator exactly, and the
//     parallel rows reproduce the serial locality-routed baseline's
//     workload exactly across every thread count (determinism pin).
//   - Allocation throughput grows with M (>= 2x at M = 8 vs mono), and the
//     parallel+batched rows beat the serial 8-shard baseline in wall clock;
//     the speedup scales with the host's core count (the 3x target needs
//     >= 4 real cores — on fewer cores the batching amortization is the
//     remaining win; CI gates a conservative 1.5x at 4 threads).
//   - Batched rows trade a bounded response-time increase (the coalescing
//     delay) for intake throughput.
//   - The churn arms rebalance the ring (epoch > 0), complete handoffs, and
//     keep the full workload accounted.
//
// Under SQLB_FAST=1 some redundant arms are skipped; the skipped list is
// printed so a smoke log cannot be mistaken for full coverage.
//
// Results land in scale_sharding.csv and BENCH_scale_sharding.json.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/sqlb_method.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/mediation_system.h"
#include "shard/sharded_mediation_system.h"
#include "workload/population.h"

namespace sqlb {
namespace {

using Clock = std::chrono::steady_clock;

struct ScalePoint {
  std::string label;
  std::size_t shards = 0;
  std::size_t threads = 0;       // 0 = serial execution
  double batch_window = 0.0;     // 0 = unbatched intake
  double wall_seconds = 0.0;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  double mean_rt = 0.0;
  // Response-time tail from the run's merged latency histogram (zero when
  // the metrics registry is disabled for the arm).
  double rt_p50 = 0.0;
  double rt_p99 = 0.0;
  double rt_p999 = 0.0;
  double cons_sat = 0.0;
  double route_imbalance = 1.0;
  std::uint64_t reroutes = 0;
  std::uint64_t gossip = 0;
  // Batched-intake arms only: realized mean burst length.
  std::uint64_t batch_flushes = 0;
  std::uint64_t batched_queries = 0;
  // Churn arms only.
  std::uint64_t joins = 0;
  std::uint64_t ring_epoch = 0;
  std::uint64_t rebalances = 0;
  std::uint64_t rebalances_damped = 0;
  std::uint64_t handoffs = 0;
  // Chaos (fault-injection) arms only.
  std::uint64_t infeasible = 0;
  std::uint64_t reissued = 0;
  std::uint64_t crashes = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t restored = 0;
  std::uint64_t orphaned = 0;
  std::uint64_t dropped_completions = 0;
  // Scale arms: agent-state residency and gossip wire cost.
  std::size_t providers = 0;
  double bytes_per_provider = 0.0;  // SoA columns + resident chunks, / N
  double arena_mb = 0.0;            // pooled arms: arena pages reserved
  std::uint64_t gossip_msgs = 0;    // load-report sends + relay forwards
  std::uint64_t relay_forwards = 0;
  double peak_rss_mb = 0.0;         // process VmHWM (monotonic across arms)
};

/// Peak resident set (VmHWM) of this process in MiB. Monotonic: each row
/// records the high-water mark as of the end of its run, so only the last
/// (largest) arm's reading is a per-arm statement — which is why the
/// 1M-provider arm runs last.
double PeakRssMb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

runtime::SystemConfig BaseConfig() {
  runtime::SystemConfig config = experiments::PaperConfig(/*seed=*/42);
  // Saturating steady load. Series stay on for the satisfaction parity
  // column; the probe cost is identical for every row, so the speedup
  // comparison is unaffected.
  config.workload = runtime::WorkloadSpec::Constant(0.95);
  config.duration = 3000.0;
  config.stats_warmup = 500.0;
  if (FastBenchMode()) {
    config.population.num_consumers /= 4;
    config.population.num_providers /= 4;
    config.duration = 800.0;
    config.stats_warmup = 200.0;
  }
  return config;
}

/// Nominal arrival rate of `config` (queries/second), for sizing the batch
/// window to a target mean burst length. Builds a throwaway Population —
/// the rate depends on the generated capacities, not on any run state.
double NominalArrivalRate(const runtime::SystemConfig& config) {
  const Population population(config.population, config.seed);
  return runtime::NominalMaxArrivalRate(config, population);
}

ScalePoint RunMono(const runtime::SystemConfig& config) {
  SqlbMethod method;
  runtime::MediationSystem system(config, &method);
  const auto start = Clock::now();
  const runtime::RunResult result = system.Run();
  const auto end = Clock::now();

  ScalePoint point;
  point.label = "mono";
  point.shards = 1;
  point.wall_seconds = std::chrono::duration<double>(end - start).count();
  point.issued = result.queries_issued;
  point.completed = result.queries_completed;
  point.infeasible = result.queries_infeasible;
  point.reissued = result.queries_reissued;
  point.mean_rt = result.response_time.mean();
  point.rt_p50 = result.ResponseTimeQuantile(0.5);
  point.rt_p99 = result.ResponseTimeQuantile(0.99);
  point.rt_p999 = result.ResponseTimeQuantile(0.999);
  point.cons_sat =
      result.series
          .Find(runtime::MediationSystem::kSeriesConsAllocSatMean)
          ->samples.back()
          .second;
  point.providers = config.population.num_providers;
  std::size_t agent_bytes = system.engine().agent_store().columns_bytes();
  for (const runtime::ProviderAgent& agent : system.engine().providers()) {
    agent_bytes += agent.ResidentBytes();
  }
  point.bytes_per_provider = static_cast<double>(agent_bytes) /
                             static_cast<double>(point.providers);
  point.peak_rss_mb = PeakRssMb();
  return point;
}

struct ShardedOptions {
  std::string label;
  std::size_t shards = 8;
  shard::RoutingPolicy policy = shard::RoutingPolicy::kLeastLoaded;
  bool rerouting = true;
  std::size_t worker_threads = 0;
  double batch_window = 0.0;
  shard::ParityMode parity = shard::ParityMode::kStrict;
  /// Churn arms: a provider join/leave schedule plus ring re-partitioning.
  const runtime::ChurnSchedule* churn = nullptr;
  bool rebalance = false;
  /// Chaos arms: scheduled shard kills (crash, failover, recovery).
  const runtime::FaultSchedule* faults = nullptr;
  /// Adaptive arm: per-shard window controller bounded by
  /// [0, adaptive_max_window] (runtime/batch_window.h).
  bool adaptive = false;
  double adaptive_max_window = 2.0;
  /// Observability arms: metrics registry (histograms) and span tracing.
  bool obs_metrics = true;
  bool obs_trace = false;
  /// Scale arms: gossip dissemination topology (shard/gossip_topology.h),
  /// pooled SoA agent state (runtime/agent_store.h + mem/), and
  /// topology-aware worker placement with the static lane->thread schedule
  /// (des/hw_topo.h).
  shard::GossipTopologyKind gossip_topology =
      shard::GossipTopologyKind::kDirect;
  bool agent_pool = false;
  bool topology_aware = false;
};

ScalePoint RunSharded(const runtime::SystemConfig& base,
                      const ShardedOptions& options,
                      shard::ShardedRunResult* full_out = nullptr) {
  shard::ShardedSystemConfig config;
  config.base = base;
  config.router.num_shards = options.shards;
  config.router.policy = options.policy;
  config.rerouting_enabled = options.rerouting;
  config.worker_threads = options.worker_threads;
  config.batch_window = options.batch_window;
  config.parity = options.parity;
  if (options.churn != nullptr) config.base.provider_churn = *options.churn;
  if (options.faults != nullptr) config.base.shard_faults = *options.faults;
  config.rebalance_enabled = options.rebalance;
  if (options.adaptive) {
    config.adaptive_batch.enabled = true;
    config.adaptive_batch.min_window = 0.0;
    config.adaptive_batch.max_window = options.adaptive_max_window;
  }
  config.base.observability.metrics = options.obs_metrics;
  config.base.observability.trace = options.obs_trace;
  config.gossip_topology = options.gossip_topology;
  config.base.agent_pool.enabled = options.agent_pool;
  config.topology_aware_workers = options.topology_aware;

  shard::ShardedMediationSystem system(
      config, [](std::uint32_t) { return std::make_unique<SqlbMethod>(); });
  const auto start = Clock::now();
  shard::ShardedRunResult result = system.Run();
  const auto end = Clock::now();

  ScalePoint point;
  point.label = options.label;
  point.shards = options.shards;
  point.threads = options.worker_threads;
  point.batch_window = options.batch_window;
  point.wall_seconds = std::chrono::duration<double>(end - start).count();
  point.issued = result.run.queries_issued;
  point.completed = result.run.queries_completed;
  point.mean_rt = result.run.response_time.mean();
  point.rt_p50 = result.run.ResponseTimeQuantile(0.5);
  point.rt_p99 = result.run.ResponseTimeQuantile(0.99);
  point.rt_p999 = result.run.ResponseTimeQuantile(0.999);
  point.cons_sat =
      result.run.series
          .Find(runtime::MediationSystem::kSeriesConsAllocSatMean)
          ->samples.back()
          .second;
  point.route_imbalance = result.RouteImbalance();
  point.reroutes = result.reroutes;
  point.gossip = result.gossip_delivered;
  point.batch_flushes = result.batch_flushes;
  point.batched_queries = result.batched_queries;
  point.joins = result.run.provider_joins;
  point.ring_epoch = result.ring_epoch;
  point.rebalances = result.ring_rebalances;
  point.rebalances_damped = result.rebalances_damped;
  point.handoffs = result.handoffs_completed;
  point.infeasible = result.run.queries_infeasible;
  point.reissued = result.reissued_queries;
  point.crashes = result.shard_crashes;
  point.snapshots = result.snapshots_taken;
  point.restored = result.restored_providers;
  point.orphaned = result.orphaned_providers;
  point.dropped_completions = result.dropped_completions;
  point.providers = config.base.population.num_providers;
  point.bytes_per_provider = static_cast<double>(result.agent_state_bytes) /
                             static_cast<double>(point.providers);
  point.arena_mb =
      static_cast<double>(result.arena_bytes_reserved) / (1024.0 * 1024.0);
  point.gossip_msgs = result.gossip_load_messages;
  point.relay_forwards = result.gossip_relay_forwards;
  point.peak_rss_mb = PeakRssMb();
  if (full_out != nullptr) *full_out = std::move(result);
  return point;
}

/// A light-workload, large-population configuration for the memory and
/// gossip scale arms. The absolute query volume is pinned (~target_qps
/// regardless of N: the workload fraction scales as 1/capacity), so these
/// arms measure state residency and gossip wire cost at population scale —
/// not allocation throughput, which the paper-config arms already cover.
/// Consumer preferences are drawn lazily: the eager C x N matrix is a
/// population-level cost that would swamp the per-provider story.
runtime::SystemConfig ScaleBase(std::size_t providers, double duration,
                                double target_qps) {
  runtime::SystemConfig config = experiments::PaperConfig(/*seed=*/42);
  config.population.num_consumers = 256;
  config.population.num_providers = providers;
  config.population.lazy_consumer_preferences = true;
  config.duration = duration;
  config.sample_interval = duration / 4.0;
  config.stats_warmup = duration / 4.0;
  config.workload = runtime::WorkloadSpec::Constant(1.0);
  config.workload = runtime::WorkloadSpec::Constant(
      std::min(1.0, target_qps / NominalArrivalRate(config)));
  return config;
}

const ScalePoint& FindPoint(const std::vector<ScalePoint>& points,
                            const std::string& label) {
  for (const ScalePoint& p : points) {
    if (p.label == label) return p;
  }
  std::fprintf(stderr, "missing bench arm: %s\n", label.c_str());
  std::abort();
}

double Throughput(const ScalePoint& p) {
  return static_cast<double>(p.completed) / p.wall_seconds;
}

}  // namespace
}  // namespace sqlb

int main() {
  using namespace sqlb;
  bench::PrintHeader("scale_sharding",
                     "mediation-tier scaling: shards, lanes, batched intake");

  const runtime::SystemConfig base = BaseConfig();
  const std::size_t kShards = 8;
  // Size the coalescing window for a mean burst of ~8 queries per shard.
  const double batch_window = std::min(
      2.0, 8.0 * static_cast<double>(kShards) / NominalArrivalRate(base));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const bool fast = FastBenchMode();

  // Arms skipped this run (fast mode trims redundant rows; a host with <= 4
  // cores has no distinct hw-thread row). Printed below: a smoke log must
  // say what it did not cover.
  std::vector<std::string> skipped;

  std::vector<ScalePoint> points;
  // The PR 1 story: algorithmic speedup from partitioning alone.
  points.push_back(RunMono(base));
  for (std::size_t shards : {1, 2, 4, 8}) {
    const std::string label = std::to_string(shards) + "-shard";
    if (fast && (shards == 2 || shards == 4)) {
      skipped.push_back(label);  // interior scaling points: shape only
      continue;
    }
    points.push_back(RunSharded(
        base, {label, shards, shard::RoutingPolicy::kLeastLoaded, true, 0,
               0.0}));
  }

  // The wall-clock story: one consumer-affine serial baseline, then
  // batching and lane parallelism stacked on top of it.
  const ShardedOptions serial_base{"8-serial", kShards,
                                   shard::RoutingPolicy::kLocality, false, 0,
                                   0.0};
  points.push_back(RunSharded(base, serial_base));

  // The observability overhead pair: the same serial 8-shard configuration
  // with everything off (no histograms, no spans — the zero-cost baseline)
  // and with everything on at the default span sampling. CI gates the
  // throughput ratio at >= 0.97 (a <= 3% instrumentation tax).
  ShardedOptions noobs = serial_base;
  noobs.label = "8-noobs";
  noobs.obs_metrics = false;
  points.push_back(RunSharded(base, noobs));

  ShardedOptions traced = serial_base;
  traced.label = "8-trace";
  traced.obs_trace = true;
  shard::ShardedRunResult traced_result;
  points.push_back(RunSharded(base, traced, &traced_result));

  ShardedOptions batched = serial_base;
  batched.label = "8-batch";
  batched.batch_window = batch_window;
  points.push_back(RunSharded(base, batched));

  // Unbatched parallel run: must be bit-identical to 8-serial (parity pin).
  ShardedOptions parity = serial_base;
  parity.label = "8-par-nobatch";
  parity.worker_threads = hw;
  points.push_back(RunSharded(base, parity));

  // Thread ladder: fast mode keeps the endpoints (1 thread for the
  // determinism pin, 4 threads for the CI speedup gates).
  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (fast) {
    thread_counts = {1, 4};
    skipped.push_back("8-par-t2");
    skipped.push_back("8-relax-t2");
  }
  if (hw > 4) {
    thread_counts.push_back(hw);
  } else {
    skipped.push_back("8-par-t<hw> (host has " + std::to_string(hw) +
                      " hardware threads: covered by the ladder)");
  }
  std::vector<std::string> parallel_labels;
  for (std::size_t threads : thread_counts) {
    ShardedOptions parallel = batched;
    parallel.label = "8-par-t" + std::to_string(threads);
    parallel.worker_threads = threads;
    points.push_back(RunSharded(base, parallel));
    parallel_labels.push_back(parallel.label);
  }

  // The relaxed-parity story: least-loaded routing — which strict parallel
  // mode rejects — against its own serial baseline. Same stacking as the
  // locality rows: unbatched serial baseline, then batching + lanes on top
  // (under relaxed parity with per-consumer sequence locks).
  const ShardedOptions ll_serial{"8-ll-serial", kShards,
                                 shard::RoutingPolicy::kLeastLoaded, false, 0,
                                 0.0, shard::ParityMode::kStrict};
  points.push_back(RunSharded(base, ll_serial));

  // Serial batched least-loaded: the divergence baseline for the relaxed
  // rows (same routing, same coalescing — only the execution substrate
  // differs). Also documents the cost of coalescing under a herding stale
  // load table (the adaptive-batch-window roadmap item).
  ShardedOptions ll_batched = ll_serial;
  ll_batched.label = "8-ll-batch";
  ll_batched.batch_window = batch_window;
  points.push_back(RunSharded(base, ll_batched));

  // Adaptive per-shard windows against the same least-loaded serial
  // configuration: the controller rate-matches each shard's window (EWMA of
  // its arrival rate, gated by its queue debt) inside [0, batch_window], so
  // the stale-gossip herding burst that inflates 8-ll-batch's response time
  // coalesces in target-length bites instead of one epoch-wide gulp. The CI
  // gate: mean rt <= the static row's at equal-or-better alloc/sec.
  ShardedOptions adaptive = ll_serial;
  adaptive.label = "8-adapt";
  adaptive.adaptive = true;
  adaptive.adaptive_max_window = batch_window;
  points.push_back(RunSharded(base, adaptive));

  std::vector<std::string> relaxed_labels;
  for (std::size_t threads : thread_counts) {
    ShardedOptions relaxed = ll_serial;
    relaxed.label = "8-relax-t" + std::to_string(threads);
    relaxed.worker_threads = threads;
    relaxed.batch_window = batch_window;
    relaxed.parity = shard::ParityMode::kRelaxed;
    points.push_back(RunSharded(base, relaxed));
    relaxed_labels.push_back(relaxed.label);
  }

  // The churn story: gut shard 0 (every provider the 8-shard ring assigns
  // it leaves a third into the run and rejoins at two thirds — by then the
  // re-partitioned ring spreads them wherever the current epoch says), with
  // runtime rebalancing on. Serial and 4-thread strict rows must stay
  // bit-identical; throughput vs the no-churn 8-serial arm is the CI gate.
  shard::RouterConfig churn_router;
  churn_router.num_shards = kShards;
  churn_router.policy = shard::RoutingPolicy::kLocality;
  const runtime::ChurnSchedule churn_schedule = shard::ShardChurnSchedule(
      churn_router, /*shard=*/0, base.population.num_providers,
      /*leave_at=*/base.duration / 3.0,
      /*rejoin_at=*/2.0 * base.duration / 3.0);
  ShardedOptions churn_serial = serial_base;
  churn_serial.label = "8-churn-serial";
  churn_serial.churn = &churn_schedule;
  churn_serial.rebalance = true;
  points.push_back(RunSharded(base, churn_serial));

  ShardedOptions churn_parallel = churn_serial;
  churn_parallel.label = "8-churn-t4";
  churn_parallel.worker_threads = 4;
  points.push_back(RunSharded(base, churn_parallel));

  // The chaos story: random shard kills on the strict serial baseline, plus
  // a 4-thread twin for the failover parity pin. Each kill loses the dead
  // shard's un-snapshotted mediation state; survivors adopt its providers
  // through the versioned ring and the lost queries are re-issued with the
  // availability penalty charged to the response-time statistics. The kill
  // schedule is pure data (seeded up front), so the arm is reproducible.
  runtime::FaultSchedule chaos_faults = runtime::FaultSchedule::RandomKills(
      base.stats_warmup, base.duration - 100.0, /*kills_per_1000s=*/3.0,
      static_cast<std::uint32_t>(kShards), /*seed=*/1007);
  // Guarantee at least one mid-run kill even under the trimmed fast-mode
  // horizon (the engine sorts events; killing a dead shard is a no-op).
  chaos_faults.Append(
      runtime::FaultSchedule::KillAt(base.duration / 2.0, /*shard=*/3));
  ShardedOptions chaos_serial = serial_base;
  chaos_serial.label = "8-chaos";
  chaos_serial.faults = &chaos_faults;
  chaos_serial.rebalance = true;
  points.push_back(RunSharded(base, chaos_serial));

  ShardedOptions chaos_parallel = chaos_serial;
  chaos_parallel.label = "8-chaos-t4";
  chaos_parallel.worker_threads = 4;
  points.push_back(RunSharded(base, chaos_parallel));

  // The million-agent scale story. First the two bit-identity twins on the
  // paper workload: pooled SoA agent state and topology-aware parallel
  // placement must each reproduce 8-serial exactly.
  ShardedOptions pooled_twin = serial_base;
  pooled_twin.label = "8-pooled";
  pooled_twin.agent_pool = true;
  points.push_back(RunSharded(base, pooled_twin));

  ShardedOptions topo_twin = serial_base;
  topo_twin.label = "8-par-topo";
  topo_twin.worker_threads = 4;
  topo_twin.topology_aware = true;
  points.push_back(RunSharded(base, topo_twin));

  // 64-shard gossip wire cost: the direct baseline fixes the exact round
  // count (sends are counted at send time: total = rounds x M), then the
  // hierarchical arm must come in under rounds x M ceil(log2 M).
  const std::size_t kGossipShards = 64;
  const runtime::SystemConfig gossip_base =
      ScaleBase(/*providers=*/fast ? 4096 : 16384,
                /*duration=*/fast ? 400.0 : 800.0, /*target_qps=*/50.0);
  ShardedOptions gossip_direct{"64-direct", kGossipShards,
                               shard::RoutingPolicy::kLocality, false, 0,
                               0.0};
  gossip_direct.agent_pool = true;
  points.push_back(RunSharded(gossip_base, gossip_direct));

  ShardedOptions gossip_hier = gossip_direct;
  gossip_hier.label = "64-hier";
  gossip_hier.gossip_topology = shard::GossipTopologyKind::kHierarchical;
  points.push_back(RunSharded(gossip_base, gossip_hier));

  // Per-provider residency: the eager heap layout against the pooled SoA
  // layout on an identical 64-shard run. The query volume is pinned low —
  // every mediation proposes to all of its shard's candidates, so each
  // provider's resident window grows ~24 B per query its shard sees; a
  // near-idle fleet is the provisioned-for-peak shape the pool exists for,
  // and it keeps the eager layout's preallocated rings (the fixed ~13 KB)
  // the dominant term.
  const runtime::SystemConfig mem_base =
      ScaleBase(/*providers=*/fast ? 16384 : 65536,
                /*duration=*/fast ? 240.0 : 480.0, /*target_qps=*/8.0);
  ShardedOptions mem_pooled{"64-pooled", kGossipShards,
                            shard::RoutingPolicy::kLocality, false, 0, 0.0};
  mem_pooled.agent_pool = true;
  mem_pooled.gossip_topology = shard::GossipTopologyKind::kHierarchical;
  points.push_back(RunSharded(mem_base, mem_pooled));

  ShardedOptions mem_aos = mem_pooled;
  mem_aos.label = "64-aos";
  mem_aos.agent_pool = false;
  points.push_back(RunSharded(mem_base, mem_aos));

  // The headline arm: one million providers on 64 shards, pooled state +
  // lazy preferences + hierarchical gossip. Runs LAST so the VmHWM reading
  // is its own high-water mark. Fast mode skips it (and says so).
  bool million_ran = false;
  ScalePoint million_pt;
  if (fast) {
    skipped.push_back("64-pooled-1m (1M providers; full runs only)");
  } else {
    const runtime::SystemConfig million_base =
        ScaleBase(/*providers=*/1'000'000, /*duration=*/300.0,
                  /*target_qps=*/8.0);
    ShardedOptions million = mem_pooled;
    million.label = "64-pooled-1m";
    points.push_back(RunSharded(million_base, million));
    million_pt = points.back();
    million_ran = true;
  }

  const double mono_throughput = Throughput(points.front());

  TablePrinter table({"config", "threads", "batch(s)", "wall(s)", "completed",
                      "alloc/s(wall)", "speedup", "mean rt(s)", "p50 rt",
                      "p99 rt", "p999 rt", "cons sat", "imbalance",
                      "reroutes", "gossip", "handoffs", "B/prov"});
  CsvWriter csv({"config", "shards", "threads", "batch_window",
                 "wall_seconds", "completed", "alloc_per_second", "speedup",
                 "mean_response_time", "rt_p50", "rt_p99", "rt_p999",
                 "consumer_allocsat", "route_imbalance",
                 "reroutes", "gossip_delivered", "provider_joins",
                 "ring_epoch", "ring_rebalances", "handoffs_completed",
                 "providers", "bytes_per_provider", "gossip_load_messages",
                 "peak_rss_mb"});
  bench::JsonArray rows;
  for (const ScalePoint& p : points) {
    const double throughput = Throughput(p);
    const double speedup = throughput / mono_throughput;
    table.AddRow({p.label, std::to_string(p.threads),
                  FormatNumber(p.batch_window, 3),
                  FormatNumber(p.wall_seconds, 3),
                  FormatNumber(static_cast<double>(p.completed)),
                  FormatNumber(throughput, 4), FormatNumber(speedup, 3),
                  FormatNumber(p.mean_rt, 4), FormatNumber(p.rt_p50, 4),
                  FormatNumber(p.rt_p99, 4), FormatNumber(p.rt_p999, 4),
                  FormatNumber(p.cons_sat, 4),
                  FormatNumber(p.route_imbalance, 3),
                  FormatNumber(static_cast<double>(p.reroutes)),
                  FormatNumber(static_cast<double>(p.gossip)),
                  FormatNumber(static_cast<double>(p.handoffs)),
                  FormatNumber(p.bytes_per_provider, 0)});
    csv.BeginRow();
    csv.AddCell(p.label);
    csv.AddCell(p.shards);
    csv.AddCell(p.threads);
    csv.AddCell(p.batch_window);
    csv.AddCell(p.wall_seconds);
    csv.AddCell(static_cast<std::size_t>(p.completed));
    csv.AddCell(throughput);
    csv.AddCell(speedup);
    csv.AddCell(p.mean_rt);
    csv.AddCell(p.rt_p50);
    csv.AddCell(p.rt_p99);
    csv.AddCell(p.rt_p999);
    csv.AddCell(p.cons_sat);
    csv.AddCell(p.route_imbalance);
    csv.AddCell(static_cast<std::size_t>(p.reroutes));
    csv.AddCell(static_cast<std::size_t>(p.gossip));
    csv.AddCell(static_cast<std::size_t>(p.joins));
    csv.AddCell(static_cast<std::size_t>(p.ring_epoch));
    csv.AddCell(static_cast<std::size_t>(p.rebalances));
    csv.AddCell(static_cast<std::size_t>(p.handoffs));
    csv.AddCell(p.providers);
    csv.AddCell(p.bytes_per_provider);
    csv.AddCell(static_cast<std::size_t>(p.gossip_msgs));
    csv.AddCell(p.peak_rss_mb);

    bench::JsonObject row;
    row.Add("config", p.label)
        .Add("shards", p.shards)
        .Add("threads", p.threads)
        .Add("batch_window", p.batch_window)
        .Add("wall_seconds", p.wall_seconds)
        .Add("queries_issued", p.issued)
        .Add("queries_completed", p.completed)
        .Add("alloc_per_second", throughput)
        .Add("speedup_vs_mono", speedup)
        .Add("mean_response_time", p.mean_rt)
        .Add("rt_p50", p.rt_p50)
        .Add("rt_p99", p.rt_p99)
        .Add("rt_p999", p.rt_p999)
        .Add("consumer_allocsat", p.cons_sat)
        .Add("batch_flushes", p.batch_flushes)
        .Add("batched_queries", p.batched_queries)
        .Add("provider_joins", p.joins)
        .Add("ring_epoch", p.ring_epoch)
        .Add("ring_rebalances", p.rebalances)
        .Add("ring_rebalances_damped", p.rebalances_damped)
        .Add("handoffs_completed", p.handoffs)
        .Add("queries_infeasible", p.infeasible)
        .Add("queries_reissued", p.reissued)
        .Add("shard_crashes", p.crashes)
        .Add("snapshots_taken", p.snapshots)
        .Add("restored_providers", p.restored)
        .Add("orphaned_providers", p.orphaned)
        .Add("dropped_completions", p.dropped_completions)
        .Add("providers", p.providers)
        .Add("bytes_per_provider", p.bytes_per_provider)
        .Add("arena_mb", p.arena_mb)
        .Add("gossip_load_messages", p.gossip_msgs)
        .Add("gossip_relay_forwards", p.relay_forwards)
        .Add("peak_rss_mb", p.peak_rss_mb);
    rows.Add(row);
  }
  std::printf("%s\n", table.ToString().c_str());

  if (fast || !skipped.empty()) {
    std::string list;
    for (std::size_t i = 0; i < skipped.size(); ++i) {
      if (i > 0) list += ", ";
      list += skipped[i];
    }
    std::printf("skipped arms%s: %s\n", fast ? " (SQLB_FAST=1)" : "",
                skipped.empty() ? "none" : list.c_str());
  }

  // --- Hardware-independent pins -------------------------------------------

  bool obs_transparent_pin = false;

  // 1. The M = 1 sharded run must BE the mono run.
  const ScalePoint& mono = points[0];
  const ScalePoint& one = FindPoint(points, "1-shard");
  const bool mono_parity = mono.issued == one.issued &&
                           mono.completed == one.completed &&
                           mono.mean_rt == one.mean_rt &&
                           mono.cons_sat == one.cons_sat;
  std::printf("M=1 parity with mono-mediator: %s\n",
              mono_parity ? "EXACT" : "BROKEN (investigate!)");

  // 2. Observability must be observation only: the metrics-off arm and the
  //    fully-traced arm replay the default arm's workload bit for bit
  //    (instrumentation never touches RNG draws, schedules, or float state).
  const ScalePoint& serial8 = FindPoint(points, "8-serial");
  {
    const ScalePoint& noobs_pt = FindPoint(points, "8-noobs");
    const ScalePoint& trace_pt = FindPoint(points, "8-trace");
    const bool obs_transparent =
        serial8.issued == noobs_pt.issued &&
        serial8.completed == noobs_pt.completed &&
        serial8.mean_rt == noobs_pt.mean_rt &&
        serial8.cons_sat == noobs_pt.cons_sat &&
        serial8.issued == trace_pt.issued &&
        serial8.completed == trace_pt.completed &&
        serial8.mean_rt == trace_pt.mean_rt &&
        serial8.cons_sat == trace_pt.cons_sat;
    std::printf("observability transparency (off/traced vs default): %s\n",
                obs_transparent ? "EXACT" : "BROKEN (investigate!)");
    obs_transparent_pin = obs_transparent;
  }

  // 3. Unbatched parallel execution must BE the serial locality run.
  const ScalePoint& par_nobatch = FindPoint(points, "8-par-nobatch");
  const bool parallel_parity = serial8.issued == par_nobatch.issued &&
                               serial8.completed == par_nobatch.completed &&
                               serial8.mean_rt == par_nobatch.mean_rt &&
                               serial8.cons_sat == par_nobatch.cons_sat;
  std::printf("parallel (unbatched) parity with 8-serial: %s\n",
              parallel_parity ? "EXACT" : "BROKEN (investigate!)");

  // 4. The batched parallel rows must agree with each other bit-for-bit
  //    across thread counts (determinism of the epoch merge).
  bool thread_determinism = true;
  const ScalePoint& first_parallel = FindPoint(points, parallel_labels.front());
  for (const std::string& label : parallel_labels) {
    const ScalePoint& p = FindPoint(points, label);
    thread_determinism = thread_determinism &&
                         p.issued == first_parallel.issued &&
                         p.completed == first_parallel.completed &&
                         p.mean_rt == first_parallel.mean_rt &&
                         p.cons_sat == first_parallel.cons_sat;
  }
  std::printf("parallel determinism across thread counts: %s\n",
              thread_determinism ? "EXACT" : "BROKEN (investigate!)");

  // 5. Relaxed-parity divergence bound vs the serial twin of the same
  //    configuration (8-ll-batch: identical routing and coalescing, only
  //    the execution substrate differs): counters conserved exactly, mean
  //    response time within 10%.
  const ScalePoint& ll_base = FindPoint(points, "8-ll-serial");
  const ScalePoint& ll_twin = FindPoint(points, "8-ll-batch");
  bool relaxed_counters_conserved = true;
  bool relaxed_rt_within_tolerance = true;
  for (const std::string& label : relaxed_labels) {
    const ScalePoint& p = FindPoint(points, label);
    relaxed_counters_conserved = relaxed_counters_conserved &&
                                 p.issued == ll_twin.issued &&
                                 p.completed == p.issued;
    const double rt_delta = std::abs(p.mean_rt - ll_twin.mean_rt);
    relaxed_rt_within_tolerance =
        relaxed_rt_within_tolerance && rt_delta <= 0.10 * ll_twin.mean_rt;
  }
  std::printf("relaxed-parity counters conserved vs 8-ll-batch: %s\n",
              relaxed_counters_conserved ? "EXACT" : "BROKEN (investigate!)");
  std::printf("relaxed-parity mean rt within 10%% of serial twin: %s\n",
              relaxed_rt_within_tolerance ? "OK" : "BROKEN (investigate!)");

  // 6. Churn: the strict parallel churn row must BE the serial churn row,
  //    the ring must actually re-partition, and the accounting must stay
  //    conserved under the handoffs.
  const ScalePoint& churn0 = FindPoint(points, "8-churn-serial");
  const ScalePoint& churn4 = FindPoint(points, "8-churn-t4");
  const bool churn_parity = churn0.issued == churn4.issued &&
                            churn0.completed == churn4.completed &&
                            churn0.mean_rt == churn4.mean_rt &&
                            churn0.cons_sat == churn4.cons_sat &&
                            churn0.ring_epoch == churn4.ring_epoch &&
                            churn0.handoffs == churn4.handoffs;
  const bool churn_repartitioned =
      churn0.rebalances > 0 && churn0.handoffs > 0 && churn0.joins > 0;
  std::printf("churn parity (serial vs 4 threads): %s\n",
              churn_parity ? "EXACT" : "BROKEN (investigate!)");
  std::printf(
      "churn re-partitioning active: %s (epoch %llu, %llu rebalances, %llu "
      "handoffs, %llu rejoins)\n",
      churn_repartitioned ? "YES" : "NO (investigate!)",
      static_cast<unsigned long long>(churn0.ring_epoch),
      static_cast<unsigned long long>(churn0.rebalances),
      static_cast<unsigned long long>(churn0.handoffs),
      static_cast<unsigned long long>(churn0.joins));

  // 7. Chaos: zero lost completions under the kill schedule — every issued
  //    query is completed, declared infeasible, or declared re-issued,
  //    exactly — the failover machinery actually fired (crashes and
  //    snapshots happened), and the strict 4-thread chaos row must BE the
  //    serial chaos row, failover counters included.
  const ScalePoint& chaos0 = FindPoint(points, "8-chaos");
  const ScalePoint& chaos4 = FindPoint(points, "8-chaos-t4");
  const std::int64_t chaos_lost_completions =
      static_cast<std::int64_t>(chaos0.issued) -
      static_cast<std::int64_t>(chaos0.completed) -
      static_cast<std::int64_t>(chaos0.infeasible) -
      static_cast<std::int64_t>(chaos0.reissued);
  const bool chaos_zero_lost = chaos_lost_completions == 0;
  const bool chaos_parity = chaos0.issued == chaos4.issued &&
                            chaos0.completed == chaos4.completed &&
                            chaos0.reissued == chaos4.reissued &&
                            chaos0.crashes == chaos4.crashes &&
                            chaos0.restored == chaos4.restored &&
                            chaos0.orphaned == chaos4.orphaned &&
                            chaos0.mean_rt == chaos4.mean_rt &&
                            chaos0.cons_sat == chaos4.cons_sat;
  const bool chaos_active = chaos0.crashes > 0 && chaos0.snapshots > 0;
  std::printf(
      "chaos zero-lost-completions: %s (issued %llu = completed %llu + "
      "infeasible %llu + reissued %llu, delta %lld)\n",
      chaos_zero_lost ? "EXACT" : "BROKEN (investigate!)",
      static_cast<unsigned long long>(chaos0.issued),
      static_cast<unsigned long long>(chaos0.completed),
      static_cast<unsigned long long>(chaos0.infeasible),
      static_cast<unsigned long long>(chaos0.reissued),
      static_cast<long long>(chaos_lost_completions));
  std::printf("chaos failover parity (serial vs 4 threads): %s\n",
              chaos_parity ? "EXACT" : "BROKEN (investigate!)");
  std::printf(
      "chaos activity (%s): %llu crashes, %llu snapshots, %llu restored, "
      "%llu orphaned, %llu dropped completions\n",
      chaos_active ? "YES" : "NO (investigate!)",
      static_cast<unsigned long long>(chaos0.crashes),
      static_cast<unsigned long long>(chaos0.snapshots),
      static_cast<unsigned long long>(chaos0.restored),
      static_cast<unsigned long long>(chaos0.orphaned),
      static_cast<unsigned long long>(chaos0.dropped_completions));

  // 8. Pooled agent state must be storage-only: the pooled twin replays
  //    8-serial bit for bit, and so does the topology-aware parallel twin
  //    (placement moves threads, never the schedule within a lane).
  const ScalePoint& pooled_pt = FindPoint(points, "8-pooled");
  const bool pooled_parity = serial8.issued == pooled_pt.issued &&
                             serial8.completed == pooled_pt.completed &&
                             serial8.mean_rt == pooled_pt.mean_rt &&
                             serial8.cons_sat == pooled_pt.cons_sat;
  std::printf("pooled-state parity with 8-serial: %s\n",
              pooled_parity ? "EXACT" : "BROKEN (investigate!)");
  const ScalePoint& topo_pt = FindPoint(points, "8-par-topo");
  const bool topo_parity = serial8.issued == topo_pt.issued &&
                           serial8.completed == topo_pt.completed &&
                           serial8.mean_rt == topo_pt.mean_rt &&
                           serial8.cons_sat == topo_pt.cons_sat;
  std::printf("topology-aware parallel parity with 8-serial: %s\n",
              topo_parity ? "EXACT" : "BROKEN (investigate!)");

  // 9. Gossip wire cost at M = 64: the direct arm counts rounds exactly
  //    (sends only, at send time), and the hierarchical arm must stay
  //    under the O(M log M) budget for those rounds. Its own counter obeys
  //    the audit identity total = rounds x M + relay forwards, up to the
  //    final round's relays still in flight at the horizon.
  const ScalePoint& g_direct = FindPoint(points, "64-direct");
  const ScalePoint& g_hier = FindPoint(points, "64-hier");
  const std::uint64_t gossip_rounds = g_direct.gossip_msgs / kGossipShards;
  const std::uint64_t gossip_budget =
      gossip_rounds * kGossipShards *
      static_cast<std::uint64_t>(
          std::ceil(std::log2(static_cast<double>(kGossipShards))));
  const bool gossip_budget_ok = gossip_rounds > 0 &&
                                g_direct.gossip_msgs % kGossipShards == 0 &&
                                g_hier.gossip_msgs <= gossip_budget;
  std::printf(
      "64-shard gossip: %llu rounds, direct %llu msgs, hierarchical %llu "
      "(%llu relay forwards) vs budget %llu (M ceil(log2 M) per round): %s\n",
      static_cast<unsigned long long>(gossip_rounds),
      static_cast<unsigned long long>(g_direct.gossip_msgs),
      static_cast<unsigned long long>(g_hier.gossip_msgs),
      static_cast<unsigned long long>(g_hier.relay_forwards),
      static_cast<unsigned long long>(gossip_budget),
      gossip_budget_ok ? "UNDER" : "OVER (investigate!)");

  // 10. Per-provider residency: the pooled layout must cut resident bytes
  //     per provider >= 4x vs the eager heap twin of the same run, and the
  //     1M arm (full runs) must hold the same factor vs that AoS baseline
  //     while finishing inside container memory.
  const ScalePoint& mem_aos_pt = FindPoint(points, "64-aos");
  const ScalePoint& mem_pooled_pt = FindPoint(points, "64-pooled");
  const double memory_ratio =
      mem_pooled_pt.bytes_per_provider > 0.0
          ? mem_aos_pt.bytes_per_provider / mem_pooled_pt.bytes_per_provider
          : 0.0;
  const bool memory_ratio_ok = memory_ratio >= 4.0;
  std::printf(
      "agent-state residency at %zu providers: %.0f B/provider eager heap "
      "vs %.0f B/provider pooled (%.1fx, CI gate >= 4x): %s\n",
      mem_aos_pt.providers, mem_aos_pt.bytes_per_provider,
      mem_pooled_pt.bytes_per_provider, memory_ratio,
      memory_ratio_ok ? "OK" : "BROKEN (investigate!)");

  double million_ratio = 0.0;
  bool million_ok = true;  // vacuously true when the arm is skipped
  if (million_ran) {
    million_ratio =
        million_pt.bytes_per_provider > 0.0
            ? mem_aos_pt.bytes_per_provider / million_pt.bytes_per_provider
            : 0.0;
    million_ok = million_pt.completed > 0 && million_ratio >= 4.0;
    std::printf(
        "1M-provider arm: %llu completed, %.0f B/provider (%.1fx vs the "
        "%zu-provider eager baseline, gate >= 4x), %.0f MiB peak RSS, "
        "%.1f MiB arena, %llu gossip msgs: %s\n",
        static_cast<unsigned long long>(million_pt.completed),
        million_pt.bytes_per_provider, million_ratio, mem_aos_pt.providers,
        million_pt.peak_rss_mb, million_pt.arena_mb,
        static_cast<unsigned long long>(million_pt.gossip_msgs),
        million_ok ? "OK" : "BROKEN (investigate!)");
  }

  // --- Hardware-dependent wall-clock numbers -------------------------------

  const ScalePoint& eight = FindPoint(points, "8-shard");
  const double speedup8 = Throughput(eight) / mono_throughput;
  std::printf("8-shard allocation speedup over mono: %.2fx %s\n", speedup8,
              speedup8 >= 2.0 ? "(>= 2x target met)" : "(below 2x target)");

  double best_parallel_wall = first_parallel.wall_seconds;
  double wall_4t = best_parallel_wall;
  for (const std::string& label : parallel_labels) {
    const ScalePoint& p = FindPoint(points, label);
    best_parallel_wall = std::min(best_parallel_wall, p.wall_seconds);
    if (p.threads == 4) wall_4t = p.wall_seconds;
  }
  const double parallel_speedup_4t = serial8.wall_seconds / wall_4t;
  const double parallel_speedup_best =
      serial8.wall_seconds / best_parallel_wall;
  std::printf(
      "parallel+batched speedup over 8-serial: %.2fx at 4 threads, %.2fx "
      "best (%u hardware threads%s)\n",
      parallel_speedup_4t, parallel_speedup_best, hw,
      hw < 4 ? "; the >= 3x target needs >= 4 cores" : "");

  double relaxed_wall_4t =
      FindPoint(points, relaxed_labels.front()).wall_seconds;
  double best_relaxed_wall = relaxed_wall_4t;
  for (const std::string& label : relaxed_labels) {
    const ScalePoint& p = FindPoint(points, label);
    best_relaxed_wall = std::min(best_relaxed_wall, p.wall_seconds);
    if (p.threads == 4) relaxed_wall_4t = p.wall_seconds;
  }
  const double relaxed_speedup_4t = ll_base.wall_seconds / relaxed_wall_4t;
  const double relaxed_speedup_best = ll_base.wall_seconds / best_relaxed_wall;
  std::printf(
      "relaxed-parity speedup over 8-ll-serial: %.2fx at 4 threads, %.2fx "
      "best%s\n",
      relaxed_speedup_4t, relaxed_speedup_best,
      hw < 4 ? " (the >= 1.5x gate needs >= 4 cores)" : "");

  // Adaptive batch windows vs the static window under the same routing:
  // the adaptive controller must close (most of) the coalescing response-
  // time penalty without giving back intake throughput. CI gates both.
  const ScalePoint& adapt = FindPoint(points, "8-adapt");
  const double adapt_rt_ratio =
      ll_twin.mean_rt > 0.0 ? adapt.mean_rt / ll_twin.mean_rt : 1.0;
  const double adapt_throughput_ratio =
      Throughput(adapt) / Throughput(ll_twin);
  const double adapt_burst = adapt.batch_flushes > 0
                                 ? static_cast<double>(adapt.batched_queries) /
                                       static_cast<double>(adapt.batch_flushes)
                                 : 0.0;
  const double static_burst =
      ll_twin.batch_flushes > 0
          ? static_cast<double>(ll_twin.batched_queries) /
                static_cast<double>(ll_twin.batch_flushes)
          : 0.0;
  std::printf(
      "adaptive windows vs 8-ll-batch: rt %.4fs vs %.4fs (%.2fx, gate <= "
      "1.0), alloc/s ratio %.2fx (gate >= 1.0), mean burst %.1f vs %.1f\n",
      adapt.mean_rt, ll_twin.mean_rt, adapt_rt_ratio, adapt_throughput_ratio,
      adapt_burst, static_burst);

  // Rebalance damping: reweigh/handoff counts of the churn arm (the
  // hysteresis + step cap should hold reweighs to a couple per mass
  // departure; the JSON records the trajectory).
  std::printf(
      "churn re-partitioning damping: %llu reweighs (%llu damped), %llu "
      "handoffs\n",
      static_cast<unsigned long long>(churn0.rebalances),
      static_cast<unsigned long long>(churn0.rebalances_damped),
      static_cast<unsigned long long>(churn0.handoffs));

  // Churn overhead: allocation throughput of the churn arm relative to the
  // identically-configured no-churn arm. CI fails below 0.8 (a > 20%
  // regression); the wall-clock ratio is also reported for context.
  const double churn_throughput_ratio =
      Throughput(churn0) / Throughput(serial8);
  std::printf(
      "churn arm throughput vs 8-serial: %.2fx (CI gate: >= 0.80)\n",
      churn_throughput_ratio);

  // Chaos overhead: allocation throughput under the kill schedule relative
  // to the identically-configured calm arm. Crashes cost re-mediation of
  // everything re-issued plus the adoption drain, so some loss is expected;
  // CI fails below 0.7 (a > 30% regression).
  const double chaos_throughput_ratio =
      Throughput(chaos0) / Throughput(serial8);
  std::printf(
      "chaos arm throughput vs 8-serial: %.2fx (CI gate: >= 0.70)\n",
      chaos_throughput_ratio);

  // Observability overhead: the fully-instrumented arm (histograms + spans
  // at the default 1-in-16 sampling) against the uninstrumented twin.
  const ScalePoint& noobs_pt = FindPoint(points, "8-noobs");
  const ScalePoint& trace_pt = FindPoint(points, "8-trace");
  const double obs_throughput_ratio =
      Throughput(trace_pt) / Throughput(noobs_pt);
  std::printf(
      "observability overhead: traced/uninstrumented alloc/s ratio %.3fx "
      "(CI gate: >= 0.97), %zu spans kept, %llu dropped\n\n",
      obs_throughput_ratio, traced_result.run.trace_spans.size(),
      static_cast<unsigned long long>(traced_result.run.trace_spans_dropped));

  bench::JsonObject summary;
  summary.Add("serial_8shard_wall_seconds", serial8.wall_seconds)
      .Add("batched_8shard_wall_seconds",
           FindPoint(points, "8-batch").wall_seconds)
      .Add("parallel_8shard_4t_wall_seconds", wall_4t)
      .Add("parallel_8shard_best_wall_seconds", best_parallel_wall)
      .Add("speedup_8shard_4threads", parallel_speedup_4t)
      .Add("speedup_8shard_best", parallel_speedup_best)
      .Add("algorithmic_speedup_8shard_vs_mono", speedup8)
      .Add("batch_window_seconds", batch_window)
      .Add("mono_parity_exact", mono_parity)
      .Add("parallel_parity_exact", parallel_parity)
      .Add("thread_determinism_exact", thread_determinism)
      .Add("ll_serial_wall_seconds", ll_base.wall_seconds)
      .Add("relaxed_8shard_4t_wall_seconds", relaxed_wall_4t)
      .Add("speedup_relaxed_4threads", relaxed_speedup_4t)
      .Add("speedup_relaxed_best", relaxed_speedup_best)
      .Add("relaxed_counters_conserved", relaxed_counters_conserved)
      .Add("relaxed_rt_within_tolerance", relaxed_rt_within_tolerance)
      .Add("churn_parity_exact", churn_parity)
      .Add("churn_repartitioned", churn_repartitioned)
      .Add("churn_throughput_ratio", churn_throughput_ratio)
      .Add("churn_ring_epoch", churn0.ring_epoch)
      .Add("churn_rebalances", churn0.rebalances)
      .Add("churn_rebalances_damped", churn0.rebalances_damped)
      .Add("churn_handoffs_completed", churn0.handoffs)
      .Add("churn_provider_joins", churn0.joins)
      .AddRaw("chaos_lost_completions",
              std::to_string(chaos_lost_completions))
      .Add("chaos_zero_lost", chaos_zero_lost)
      .Add("chaos_parity_exact", chaos_parity)
      .Add("chaos_active", chaos_active)
      .Add("chaos_throughput_ratio", chaos_throughput_ratio)
      .Add("chaos_shard_crashes", chaos0.crashes)
      .Add("chaos_snapshots_taken", chaos0.snapshots)
      .Add("chaos_reissued_queries", chaos0.reissued)
      .Add("chaos_restored_providers", chaos0.restored)
      .Add("chaos_orphaned_providers", chaos0.orphaned)
      .Add("chaos_dropped_completions", chaos0.dropped_completions)
      .Add("adaptive_mean_rt", adapt.mean_rt)
      .Add("static_batch_mean_rt", ll_twin.mean_rt)
      .Add("adaptive_rt_ratio", adapt_rt_ratio)
      .Add("adaptive_throughput_ratio", adapt_throughput_ratio)
      .Add("adaptive_mean_burst", adapt_burst)
      .Add("static_mean_burst", static_burst)
      .Add("observability_transparent", obs_transparent_pin)
      .Add("observability_throughput_ratio", obs_throughput_ratio)
      .Add("trace_spans",
           static_cast<std::uint64_t>(traced_result.run.trace_spans.size()))
      .Add("trace_spans_dropped", traced_result.run.trace_spans_dropped)
      .Add("serial_rt_p50", serial8.rt_p50)
      .Add("serial_rt_p99", serial8.rt_p99)
      .Add("serial_rt_p999", serial8.rt_p999)
      .Add("pooled_parity_exact", pooled_parity)
      .Add("topology_parity_exact", topo_parity)
      .Add("gossip_shards", kGossipShards)
      .Add("gossip_rounds", gossip_rounds)
      .Add("gossip_direct_messages", g_direct.gossip_msgs)
      .Add("gossip_hier_messages", g_hier.gossip_msgs)
      .Add("gossip_hier_relay_forwards", g_hier.relay_forwards)
      .Add("gossip_budget_messages", gossip_budget)
      .Add("gossip_budget_ok", gossip_budget_ok)
      .Add("aos_bytes_per_provider", mem_aos_pt.bytes_per_provider)
      .Add("pooled_bytes_per_provider", mem_pooled_pt.bytes_per_provider)
      .Add("memory_bytes_ratio", memory_ratio)
      .Add("memory_ratio_ok", memory_ratio_ok)
      .Add("million_arm_ran", million_ran)
      .Add("million_bytes_per_provider",
           million_ran ? million_pt.bytes_per_provider : 0.0)
      .Add("million_memory_ratio", million_ratio)
      .Add("million_peak_rss_mb", million_ran ? million_pt.peak_rss_mb : 0.0)
      .Add("million_completed", million_ran ? million_pt.completed : 0)
      .Add("million_ok", million_ok);

  std::string skipped_json;
  for (std::size_t i = 0; i < skipped.size(); ++i) {
    if (i > 0) skipped_json += ", ";
    skipped_json += "\"" + skipped[i] + "\"";
  }

  bench::JsonObject report;
  report.Add("bench", "scale_sharding")
      .Add("fast_mode", FastBenchMode())
      .Add("hardware_threads", static_cast<std::uint64_t>(hw))
      .AddRaw("skipped_arms", "[" + skipped_json + "]")
      .AddRaw("rows", rows.ToString())
      .AddRaw("summary", summary.ToString());
  bench::WriteBenchJson("scale_sharding", report);

  auto path = EnsureOutputPath(ResultsDirectory(), "scale_sharding.csv");
  if (path.ok() && csv.WriteFile(path.value()).ok()) {
    std::printf("wrote %s\n", path.value().c_str());
  }

  // Flight-recorder artifacts of the fully-instrumented arm: the merged
  // metrics snapshot and the Perfetto/chrome://tracing span stream. CI
  // uploads both next to the bench JSON.
  auto metrics_path =
      EnsureOutputPath(ResultsDirectory(), "METRICS_scale_sharding.json");
  if (metrics_path.ok()) {
    std::ofstream out(metrics_path.value());
    if (out) {
      out << traced_result.run.metrics.ToJson() << "\n";
      std::printf("wrote %s\n", metrics_path.value().c_str());
    }
  }
  auto trace_path =
      EnsureOutputPath(ResultsDirectory(), "TRACE_scale_sharding.json");
  if (trace_path.ok()) {
    std::ofstream out(trace_path.value());
    if (out) {
      out << obs::ChromeTraceJson(traced_result.run.trace_spans, kShards)
          << "\n";
      std::printf("wrote %s\n", trace_path.value().c_str());
    }
  }

  return mono_parity && obs_transparent_pin && parallel_parity &&
                 thread_determinism && relaxed_counters_conserved &&
                 relaxed_rt_within_tolerance && churn_parity &&
                 churn_repartitioned && chaos_zero_lost && chaos_parity &&
                 chaos_active && speedup8 >= 2.0 && pooled_parity &&
                 topo_parity && gossip_budget_ok && memory_ratio_ok &&
                 million_ok
             ? 0
             : 1;
}
