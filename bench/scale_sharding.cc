// Scaling the mediation tier: 1 vs 2 vs 4 vs 8 shards under a saturating
// arrival rate.
//
// The discrete-event kernel is single-threaded, so the win measured here is
// algorithmic, not parallel: each shard mediates over ~N/M candidates, so
// the per-query Algorithm-1 cost (intention gathering + scoring, O(N) and
// worse) shrinks with M and wall-clock allocation throughput rises. The
// parallel-shard execution follow-up in ROADMAP.md stacks on top of this.
//
// What to look for:
//   - M = 1 (sharded) reproduces the mono-mediator exactly: same completed
//     count, same mean response time, same consumer satisfaction — the
//     sharding seam costs nothing when unused.
//   - Allocation throughput (queries/s of wall clock) grows with M; the
//     acceptance bar is >= 2x at M = 8 vs the mono-mediator.
//   - Simulated quality (response time, satisfaction) stays in the same
//     regime: partitioning shrinks each query's candidate set, which costs
//     a little adequation but keeps allocations sound.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/sqlb_method.h"
#include "runtime/mediation_system.h"
#include "shard/sharded_mediation_system.h"

namespace sqlb {
namespace {

using Clock = std::chrono::steady_clock;

struct ScalePoint {
  std::string label;
  std::size_t shards = 0;
  double wall_seconds = 0.0;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  double mean_rt = 0.0;
  double cons_sat = 0.0;
  double route_imbalance = 1.0;
  std::uint64_t reroutes = 0;
  std::uint64_t gossip = 0;
};

runtime::SystemConfig BaseConfig() {
  runtime::SystemConfig config = experiments::PaperConfig(/*seed=*/42);
  // Saturating steady load. Series stay on for the satisfaction parity
  // column; the probe cost is identical for every row, so the speedup
  // comparison is unaffected.
  config.workload = runtime::WorkloadSpec::Constant(0.95);
  config.duration = 3000.0;
  config.stats_warmup = 500.0;
  if (FastBenchMode()) {
    config.population.num_consumers /= 4;
    config.population.num_providers /= 4;
    config.duration = 800.0;
    config.stats_warmup = 200.0;
  }
  return config;
}

ScalePoint RunMono(const runtime::SystemConfig& config) {
  SqlbMethod method;
  runtime::MediationSystem system(config, &method);
  const auto start = Clock::now();
  const runtime::RunResult result = system.Run();
  const auto end = Clock::now();

  ScalePoint point;
  point.label = "mono";
  point.shards = 1;
  point.wall_seconds = std::chrono::duration<double>(end - start).count();
  point.issued = result.queries_issued;
  point.completed = result.queries_completed;
  point.mean_rt = result.response_time.mean();
  point.cons_sat =
      result.series
          .Find(runtime::MediationSystem::kSeriesConsAllocSatMean)
          ->samples.back()
          .second;
  return point;
}

ScalePoint RunSharded(const runtime::SystemConfig& base, std::size_t shards) {
  shard::ShardedSystemConfig config;
  config.base = base;
  config.router.num_shards = shards;
  config.router.policy = shard::RoutingPolicy::kLeastLoaded;
  config.rerouting_enabled = true;

  shard::ShardedMediationSystem system(
      config, [](std::uint32_t) { return std::make_unique<SqlbMethod>(); });
  const auto start = Clock::now();
  const shard::ShardedRunResult result = system.Run();
  const auto end = Clock::now();

  ScalePoint point;
  point.label = std::to_string(shards) + "-shard";
  point.shards = shards;
  point.wall_seconds = std::chrono::duration<double>(end - start).count();
  point.issued = result.run.queries_issued;
  point.completed = result.run.queries_completed;
  point.mean_rt = result.run.response_time.mean();
  point.cons_sat =
      result.run.series
          .Find(runtime::MediationSystem::kSeriesConsAllocSatMean)
          ->samples.back()
          .second;
  point.route_imbalance = result.RouteImbalance();
  point.reroutes = result.reroutes;
  point.gossip = result.gossip_delivered;
  return point;
}

}  // namespace
}  // namespace sqlb

int main() {
  using namespace sqlb;
  bench::PrintHeader("scale_sharding",
                     "mediation-tier scaling: shard count vs throughput");

  const runtime::SystemConfig base = BaseConfig();
  std::vector<ScalePoint> points;
  points.push_back(RunMono(base));
  for (std::size_t shards : {1, 2, 4, 8}) {
    points.push_back(RunSharded(base, shards));
  }

  const double mono_throughput =
      static_cast<double>(points.front().completed) /
      points.front().wall_seconds;

  TablePrinter table({"config", "wall(s)", "completed", "alloc/s(wall)",
                      "speedup", "mean rt(s)", "cons sat", "imbalance",
                      "reroutes", "gossip"});
  CsvWriter csv({"config", "shards", "wall_seconds", "completed",
                 "alloc_per_second", "speedup", "mean_response_time",
                 "consumer_allocsat", "route_imbalance", "reroutes",
                 "gossip_delivered"});
  for (const ScalePoint& p : points) {
    const double throughput =
        static_cast<double>(p.completed) / p.wall_seconds;
    const double speedup = throughput / mono_throughput;
    table.AddRow({p.label, FormatNumber(p.wall_seconds, 3),
                  FormatNumber(static_cast<double>(p.completed)),
                  FormatNumber(throughput, 4), FormatNumber(speedup, 3),
                  FormatNumber(p.mean_rt, 4), FormatNumber(p.cons_sat, 4),
                  FormatNumber(p.route_imbalance, 3),
                  FormatNumber(static_cast<double>(p.reroutes)),
                  FormatNumber(static_cast<double>(p.gossip))});
    csv.BeginRow();
    csv.AddCell(p.label);
    csv.AddCell(p.shards);
    csv.AddCell(p.wall_seconds);
    csv.AddCell(static_cast<std::size_t>(p.completed));
    csv.AddCell(throughput);
    csv.AddCell(speedup);
    csv.AddCell(p.mean_rt);
    csv.AddCell(p.cons_sat);
    csv.AddCell(p.route_imbalance);
    csv.AddCell(static_cast<std::size_t>(p.reroutes));
    csv.AddCell(static_cast<std::size_t>(p.gossip));
  }
  std::printf("%s\n", table.ToString().c_str());

  // Parity spot check: the M = 1 sharded run must BE the mono run.
  const ScalePoint& mono = points[0];
  const ScalePoint& one = points[1];
  const bool parity = mono.issued == one.issued &&
                      mono.completed == one.completed &&
                      mono.mean_rt == one.mean_rt &&
                      mono.cons_sat == one.cons_sat;
  std::printf("M=1 parity with mono-mediator: %s\n",
              parity ? "EXACT" : "BROKEN (investigate!)");

  const ScalePoint& eight = points.back();
  const double speedup8 =
      (static_cast<double>(eight.completed) / eight.wall_seconds) /
      mono_throughput;
  std::printf("8-shard allocation speedup over mono: %.2fx %s\n\n", speedup8,
              speedup8 >= 2.0 ? "(>= 2x target met)" : "(below 2x target)");

  auto path = EnsureOutputPath(ResultsDirectory(), "scale_sharding.csv");
  if (path.ok() && csv.WriteFile(path.value()).ok()) {
    std::printf("wrote %s\n", path.value().c_str());
  }
  return parity && speedup8 >= 2.0 ? 0 : 1;
}
