// Reproduces Figures 4(a)-(h): the quality metrics of the three allocation
// methods with captive participants, workload ramping from 30% to 100% of
// the total system capacity over the run (Section 6.3.1).
//
// Paper shapes to look for:
//   (a) provider satisfaction on intentions: SQLB on top, decreasing with
//       load; both baselines flat and low.
//   (b) provider satisfaction on preferences: SQLB ~ Mariposa-like, both
//       above Capacity based.
//   (c) provider allocation satisfaction (preferences): Capacity based
//       punishes providers (< 1); SQLB and Mariposa-like >= 1.
//   (d) provider satisfaction fairness: all three comparable.
//   (e) consumer allocation satisfaction: only SQLB > 1, baselines ~ 1.
//   (f) consumer satisfaction fairness: high and flat for all.
//   (g) utilization mean: Capacity based tracks the workload; Mariposa-like
//       overshoots (overutilization).
//   (h) utilization fairness: Capacity based ~ 1; SQLB catches up as the
//       workload grows (its adaptivity); Mariposa-like stays unfair.

#include "bench_common.h"
#include "runtime/mediation_system.h"

namespace sqlb {
namespace {

using runtime::MediationSystem;

void Main() {
  bench::PrintHeader("Figure 4(a)-(h)",
                     "quality metrics, captive participants, ramp 30->100%");

  runtime::SystemConfig base = experiments::PaperConfig(BenchSeed(42));
  if (FastBenchMode()) experiments::ApplyFastMode(base);

  const auto runs =
      experiments::RunQualityRamp(base, experiments::PaperTrio());

  const std::size_t stride =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   base.duration / base.sample_interval / 20));

  bench::PrintSeriesTable(
      "Figure 4(a): provider satisfaction mean, on intentions  mu(ds,P)",
      MediationSystem::kSeriesProvSatIntMean, runs, stride);
  bench::PrintSeriesTable(
      "Figure 4(b): provider satisfaction mean, on preferences",
      MediationSystem::kSeriesProvSatPrefMean, runs, stride);
  bench::PrintSeriesTable(
      "Figure 4(c): provider allocation-satisfaction mean, on preferences "
      "mu(das,P)",
      MediationSystem::kSeriesProvAllocSatPrefMean, runs, stride);
  bench::PrintSeriesTable(
      "Figure 4(d): provider satisfaction fairness  f(ds,P)",
      MediationSystem::kSeriesProvSatIntFair, runs, stride);
  bench::PrintSeriesTable(
      "Figure 4(e): consumer allocation-satisfaction mean  mu(das,C)",
      MediationSystem::kSeriesConsAllocSatMean, runs, stride);
  bench::PrintSeriesTable(
      "Figure 4(f): consumer satisfaction fairness  f(ds,C)",
      MediationSystem::kSeriesConsSatFair, runs, stride);
  bench::PrintSeriesTable(
      "Figure 4(g): utilization mean  mu(Ut,P)",
      MediationSystem::kSeriesUtMean, runs, stride);
  bench::PrintSeriesTable(
      "Figure 4(h): utilization fairness  f(Ut,P)",
      MediationSystem::kSeriesUtFair, runs, stride);

  bench::WriteRunCsvs("fig4_quality", runs);

  std::printf("run summary:\n");
  TablePrinter summary(
      {"method", "queries", "completed", "mean RT(s)", "p@end"});
  for (const auto& run : runs) {
    summary.AddRow({experiments::MethodName(run.method),
                    std::to_string(run.run.queries_issued),
                    std::to_string(run.run.queries_completed),
                    FormatNumber(run.run.response_time.mean(), 4),
                    std::to_string(run.run.remaining_providers)});
  }
  std::printf("%s\n", summary.ToString().c_str());
}

}  // namespace
}  // namespace sqlb

int main() {
  sqlb::Main();
  return 0;
}
