// Ablation: is Eq. 6's satisfaction-adaptive omega needed, or would a
// fixed balance do? (Section 5.3 notes omega can be pinned for cooperative
// settings, e.g. omega = 0 when only result quality matters.)
//
// Expected: omega = 0 maximizes consumer allocation satisfaction but
// ignores providers (their allocation satisfaction and retention suffer);
// omega = 1 mirrors that; fixed 0.5 is a reasonable static compromise; the
// adaptive omega matches the best of both sides without hand-tuning and
// keeps departures lowest.

#include <optional>

#include "bench_common.h"
#include "core/sqlb_method.h"
#include "runtime/mediation_system.h"

namespace sqlb {
namespace {

using runtime::MediationSystem;

struct Variant {
  const char* label;
  std::optional<double> fixed_omega;
};

void Main() {
  bench::PrintHeader("Ablation: omega",
                     "adaptive Eq. 6 vs fixed omega in {0, 0.5, 1}");

  runtime::SystemConfig config;
  config.population.num_consumers = 50;
  config.population.num_providers = 100;
  config.provider.window.capacity = 150;
  config.consumer.window.capacity = 100;
  config.workload = runtime::WorkloadSpec::Constant(0.8);
  config.duration = FastBenchMode() ? 600.0 : 1500.0;
  config.stats_warmup = config.duration * 0.2;
  config.seed = BenchSeed(42);

  const Variant variants[] = {
      {"adaptive (Eq. 6)", std::nullopt},
      {"fixed 0 (consumer only)", 0.0},
      {"fixed 0.5", 0.5},
      {"fixed 1 (provider only)", 1.0},
  };

  TablePrinter table({"omega", "cons. allocsat", "prov. allocsat",
                      "mean RT(s)", "prov. exits(%)", "cons. exits(%)"});
  CsvWriter csv({"omega", "consumer_allocsat", "provider_allocsat",
                 "mean_rt", "provider_exits", "consumer_exits"});
  for (const Variant& variant : variants) {
    runtime::SystemConfig run_config = config;
    run_config.departures = runtime::DepartureConfig::AllEnabled();
    run_config.departures.grace_period = config.duration * 0.25;
    run_config.departures.check_interval = 300.0;

    SqlbOptions options;
    options.fixed_omega = variant.fixed_omega;
    runtime::RunResult result =
        bench::RunMonoService(run_config, [options](std::uint32_t) {
          return std::make_unique<SqlbMethod>(options);
        });

    const double cons =
        result.series.Find(MediationSystem::kSeriesConsAllocSatMean)
            ->MeanOver(run_config.stats_warmup, run_config.duration);
    const double prov =
        result.series.Find(MediationSystem::kSeriesProvAllocSatPrefMean)
            ->MeanOver(run_config.stats_warmup, run_config.duration);
    table.AddRow({variant.label, FormatNumber(cons, 3),
                  FormatNumber(prov, 3),
                  FormatNumber(result.response_time.mean(), 3),
                  FormatNumber(result.ProviderDeparturePercent(), 3),
                  FormatNumber(result.ConsumerDeparturePercent(), 3)});
    csv.BeginRow();
    csv.AddCell(std::string(variant.label));
    csv.AddCell(cons);
    csv.AddCell(prov);
    csv.AddCell(result.response_time.mean());
    csv.AddCell(result.ProviderDeparturePercent());
    csv.AddCell(result.ConsumerDeparturePercent());
  }
  std::printf("%s\n", table.ToString().c_str());
  auto path = EnsureOutputPath(ResultsDirectory(), "ablation_omega.csv");
  if (path.ok()) (void)csv.WriteFile(path.value());
}

}  // namespace
}  // namespace sqlb

int main() {
  sqlb::Main();
  return 0;
}
