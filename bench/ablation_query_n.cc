// Ablation: multi-result queries. The model defines q.n (the number of
// providers a consumer wants, Section 2) and Eq. 2 deliberately divides by
// q.n so that receiving fewer results than desired costs satisfaction, but
// the paper's evaluation pins q.n = 1. This sweep exercises the dimension:
// each query is performed by q.n providers, so the effective load is
// q.n * workload.
//
// Expected: consumer satisfaction rises with q.n (more of the preferred
// providers answer each query) until the load multiplication bites —
// response time grows superlinearly once q.n * workload approaches system
// capacity.

#include "bench_common.h"
#include "core/sqlb_method.h"
#include "runtime/mediation_system.h"

namespace sqlb {
namespace {

using runtime::MediationSystem;

void Main() {
  bench::PrintHeader("Ablation: q.n",
                     "multi-result queries under SQLB (Eq. 2 semantics)");

  runtime::SystemConfig base;
  base.population.num_consumers = 50;
  base.population.num_providers = 100;
  base.provider.window.capacity = 150;
  base.consumer.window.capacity = 100;
  // Keep q.n * workload below capacity for the largest q.n tested.
  base.workload = runtime::WorkloadSpec::Constant(0.2);
  base.duration = FastBenchMode() ? 600.0 : 1500.0;
  base.stats_warmup = base.duration * 0.2;
  base.seed = BenchSeed(42);

  TablePrinter table({"q.n", "effective load", "cons. sat", "cons. allocsat",
                      "mean RT(s)"});
  for (std::uint32_t n : {1u, 2u, 3u, 4u}) {
    runtime::SystemConfig config = base;
    config.query_n = n;

    runtime::RunResult result = bench::RunMonoService(
        config, [](std::uint32_t) { return std::make_unique<SqlbMethod>(); });
    const double sat =
        result.series.Find(MediationSystem::kSeriesConsSatMean)
            ->MeanOver(config.stats_warmup, config.duration);
    const double allocsat =
        result.series.Find(MediationSystem::kSeriesConsAllocSatMean)
            ->MeanOver(config.stats_warmup, config.duration);
    table.AddRow({std::to_string(n),
                  FormatNumber(0.2 * static_cast<double>(n)),
                  FormatNumber(sat, 3), FormatNumber(allocsat, 3),
                  FormatNumber(result.response_time.mean(), 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("(response time counts a query complete when the *last* of "
              "its q.n providers answers,\nso it grows with q.n even "
              "before the load multiplication saturates anything.)\n\n");
}

}  // namespace
}  // namespace sqlb

int main() {
  sqlb::Main();
  return 0;
}
