// Reproduces Figure 6: the percentage of consumer departures (by
// dissatisfaction) vs workload (Section 6.3.2).
//
// Paper shape: SQLB loses no consumers at any workload; both baselines
// lose more than 20% of consumers at every workload.

#include "bench_common.h"

namespace sqlb {
namespace {

void Main() {
  bench::PrintHeader("Figure 6", "consumer departures vs workload");

  runtime::SystemConfig base = experiments::PaperConfig(BenchSeed(42));
  if (FastBenchMode()) experiments::ApplyFastMode(base);

  experiments::SweepOptions options;
  options.duration = FastBenchMode() ? 1500.0 : 3000.0;
  options.warmup = options.duration * 0.2;
  options.repetitions = static_cast<std::size_t>(BenchRepetitions(1));
  options.seed = base.seed;
  options.departures = runtime::DepartureConfig::AllEnabled();
  options.departures.grace_period = options.duration * 0.2;
  options.departures.check_interval = 300.0;

  const auto sweeps = experiments::RunWorkloadSweep(
      base, options, experiments::PaperTrio());

  bench::PrintSweepTable(
      "Consumer departures (% of initial consumers) vs workload:", sweeps,
      &experiments::SweepPoint::consumer_departure_percent, 3);
  bench::WriteSweepCsv("fig6_consumer_departures.csv", sweeps,
                       &experiments::SweepPoint::consumer_departure_percent);
}

}  // namespace
}  // namespace sqlb

int main() {
  sqlb::Main();
  return 0;
}
