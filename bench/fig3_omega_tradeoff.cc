// Reproduces Figure 3: the omega balance surface of Eq. 6 as a function of
// the consumer's and the provider's satisfaction (Section 5.3).
//
// Shape: a plane from omega = 0 (consumer fully dissatisfied relative to
// the provider: the consumer's intention dominates the score) to omega = 1
// (provider fully dissatisfied: the provider's intention dominates).

#include "bench_common.h"
#include "core/scoring.h"

namespace sqlb {
namespace {

void Main() {
  bench::PrintHeader("Figure 3",
                     "omega vs (provider satisfaction, consumer "
                     "satisfaction)");

  TablePrinter table({"prov sat\\cons sat", "0", "0.25", "0.5", "0.75",
                      "1"});
  const double cons[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  for (double sp = 0.0; sp <= 1.0 + 1e-9; sp += 0.25) {
    std::vector<std::string> row{FormatNumber(sp)};
    for (double sc : cons) {
      row.push_back(FormatNumber(OmegaBalance(sc, sp), 4));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());

  CsvWriter csv({"provider_satisfaction", "consumer_satisfaction", "omega"});
  for (double sp = 0.0; sp <= 1.0 + 1e-9; sp += 0.05) {
    for (double sc = 0.0; sc <= 1.0 + 1e-9; sc += 0.05) {
      csv.BeginRow();
      csv.AddCell(sp);
      csv.AddCell(sc);
      csv.AddCell(OmegaBalance(sc, sp));
    }
  }
  auto path = EnsureOutputPath(ResultsDirectory(), "fig3_omega.csv");
  if (path.ok() && csv.WriteFile(path.value()).ok()) {
    std::printf("wrote %s\n\n", path.value().c_str());
  }
}

}  // namespace
}  // namespace sqlb

int main() {
  sqlb::Main();
  return 0;
}
