// Microbenchmarks: matchmaking latency vs catalogue size — the first step
// of every mediation (Section 2 assumes it exists; matchmaking/ builds it).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "matchmaking/matchmaker.h"

namespace sqlb {
namespace {

TermIndexMatchmaker BuildCatalogue(std::size_t providers,
                                   std::uint32_t vocabulary,
                                   std::uint64_t seed) {
  TermIndexMatchmaker matchmaker;
  Rng rng(seed);
  for (std::size_t p = 0; p < providers; ++p) {
    std::vector<std::uint32_t> terms;
    for (std::uint32_t t = 0; t < vocabulary; ++t) {
      if (rng.Bernoulli(0.3)) terms.push_back(t);
    }
    matchmaker.Register(ProviderId(static_cast<std::uint32_t>(p)),
                        Capability(std::move(terms)));
  }
  return matchmaker;
}

void BM_TermIndexMatch(benchmark::State& state) {
  const auto providers = static_cast<std::size_t>(state.range(0));
  auto matchmaker = BuildCatalogue(providers, 64, 17);
  Query query;
  query.required_terms = {1, 5, 9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(matchmaker.Match(query));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(providers));
}
BENCHMARK(BM_TermIndexMatch)->Arg(400)->Arg(4000)->Arg(40000);

void BM_AcceptAllMatch(benchmark::State& state) {
  AcceptAllMatchmaker matchmaker;
  for (std::uint32_t p = 0; p < 400; ++p) {
    matchmaker.Register(ProviderId(p), Capability{});
  }
  Query query;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matchmaker.Match(query));
  }
}
BENCHMARK(BM_AcceptAllMatch);

void BM_RegisterUnregister(benchmark::State& state) {
  auto matchmaker = BuildCatalogue(1000, 64, 23);
  Capability churn_cap({1, 2, 3});
  for (auto _ : state) {
    matchmaker.Register(ProviderId(1000), churn_cap);
    matchmaker.Unregister(ProviderId(1000));
  }
}
BENCHMARK(BM_RegisterUnregister);

}  // namespace
}  // namespace sqlb

#include "micro_main.h"
SQLB_MICRO_BENCH_MAIN("micro_matchmaking")
